//! Horizontal / vertical constraint graphs from a global floorplan.
//!
//! Every module pair receives exactly one ordering relation. The
//! direction is chosen by normalized separation (as in UFO \[2\] /
//! TOFU \[19\]): pairs further apart horizontally (relative to the
//! outline width) become horizontal constraints, the rest vertical.

use gfp_netlist::Outline;

/// The ordering relation of one module pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `left` must be entirely left of `right`.
    LeftOf {
        /// The left module.
        left: usize,
        /// The right module.
        right: usize,
    },
    /// `below` must be entirely below `above`.
    Below {
        /// The lower module.
        below: usize,
        /// The upper module.
        above: usize,
    },
}

/// The pair of constraint graphs, stored as a flat relation list.
#[derive(Debug, Clone)]
pub struct ConstraintGraph {
    /// One relation per unordered module pair.
    pub relations: Vec<Relation>,
    /// Number of modules.
    pub n: usize,
}

impl ConstraintGraph {
    /// Builds the graphs from module centers.
    ///
    /// The direction of each pair is the one with the larger
    /// separation relative to the **outline** dimension available in
    /// that direction scaled to the layout: pairs separated mostly
    /// along the outline's long side become constraints along that
    /// side, which is what lets tall outlines stack modules.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one module is given.
    pub fn from_positions(positions: &[(f64, f64)], outline: &Outline) -> Self {
        let n = positions.len();
        assert!(n >= 1, "need at least one module");
        // Normalize separations by the *layout spread* per axis so a
        // vertically stretched global floorplan (from a 1:2 outline)
        // yields mostly vertical relations.
        let spread = |get: &dyn Fn(&(f64, f64)) -> f64, fallback: f64| -> f64 {
            let lo = positions.iter().map(|p| get(p)).fold(f64::MAX, f64::min);
            let hi = positions.iter().map(|p| get(p)).fold(f64::MIN, f64::max);
            let s = hi - lo;
            if s > 1e-9 * fallback {
                s
            } else {
                fallback
            }
        };
        let sx_norm = spread(&|p: &(f64, f64)| p.0, outline.width);
        let sy_norm = spread(&|p: &(f64, f64)| p.1, outline.height);
        let mut relations = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = positions[j].0 - positions[i].0;
                let dy = positions[j].1 - positions[i].1;
                let sx = dx.abs() / sx_norm;
                let sy = dy.abs() / sy_norm;
                let rel = if sx >= sy {
                    if dx >= 0.0 {
                        Relation::LeftOf { left: i, right: j }
                    } else {
                        Relation::LeftOf { left: j, right: i }
                    }
                } else if dy >= 0.0 {
                    Relation::Below { below: i, above: j }
                } else {
                    Relation::Below { below: j, above: i }
                };
                relations.push(rel);
            }
        }
        ConstraintGraph { relations, n }
    }

    /// Flat index of the unordered pair `(i, j)` with `i < j`.
    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// TOFU-style repair: while the constraint graph cannot fit the
    /// outline with square shapes, flip the most flippable relation on
    /// the critical path to the other direction. Returns `true` when
    /// both directions fit after repair.
    ///
    /// `positions` guide the flip direction; `sizes` are per-module
    /// square sides (`√s_i`).
    pub fn repair(
        &mut self,
        sizes: &[f64],
        outline: &Outline,
        positions: &[(f64, f64)],
        max_flips: usize,
    ) -> bool {
        for _ in 0..max_flips {
            let over_w = self.min_width(sizes) > outline.width;
            let over_h = self.min_height(sizes) > outline.height;
            if !over_w && !over_h {
                return true;
            }
            let flipped = if over_w {
                self.flip_on_critical_path(sizes, positions, true)
            } else {
                self.flip_on_critical_path(sizes, positions, false)
            };
            if !flipped {
                break;
            }
        }
        self.min_width(sizes) <= outline.width && self.min_height(sizes) <= outline.height
    }

    /// Flips one relation on the critical path of the given direction;
    /// chooses the consecutive pair whose orthogonal separation is
    /// largest (the most natural candidate for the other direction).
    fn flip_on_critical_path(
        &mut self,
        sizes: &[f64],
        positions: &[(f64, f64)],
        horizontal: bool,
    ) -> bool {
        let chain = self.critical_chain(sizes, horizontal);
        if chain.len() < 2 {
            return false;
        }
        let mut best: Option<(usize, usize, f64)> = None; // (u, v, score)
        for w in chain.windows(2) {
            let (u, v) = (w[0], w[1]);
            let du = (positions[u].0 - positions[v].0).abs();
            let dv = (positions[u].1 - positions[v].1).abs();
            // Score: separation along the *other* axis, normalized by
            // the pair's size there.
            let score = if horizontal {
                dv / (sizes[u] + sizes[v])
            } else {
                du / (sizes[u] + sizes[v])
            };
            if best.map_or(true, |(_, _, s)| score > s) {
                best = Some((u, v, score));
            }
        }
        let (u, v, _) = best.expect("chain has at least one edge");
        let (i, j) = if u < v { (u, v) } else { (v, u) };
        let idx = self.pair_index(i, j);
        self.relations[idx] = if horizontal {
            // Was LeftOf along the chain; make it vertical.
            if positions[i].1 <= positions[j].1 {
                Relation::Below { below: i, above: j }
            } else {
                Relation::Below { below: j, above: i }
            }
        } else if positions[i].0 <= positions[j].0 {
            Relation::LeftOf { left: i, right: j }
        } else {
            Relation::LeftOf { left: j, right: i }
        };
        true
    }

    /// The module chain realizing the longest path in one direction.
    fn critical_chain(&self, sizes: &[f64], horizontal: bool) -> Vec<usize> {
        let n = self.n;
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for rel in &self.relations {
            let (a, b) = match (rel, horizontal) {
                (Relation::LeftOf { left, right }, true) => (*left, *right),
                (Relation::Below { below, above }, false) => (*below, *above),
                _ => continue,
            };
            succ[a].push(b);
            indeg[b] += 1;
        }
        let mut dist: Vec<f64> = sizes.to_vec();
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(u) = queue.pop() {
            for &v in &succ[u] {
                if dist[u] + sizes[v] > dist[v] {
                    dist[v] = dist[u] + sizes[v];
                    pred[v] = Some(u);
                }
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        let mut end = 0;
        for i in 1..n {
            if dist[i] > dist[end] {
                end = i;
            }
        }
        let mut chain = vec![end];
        while let Some(p) = pred[*chain.last().expect("nonempty")] {
            chain.push(p);
        }
        chain.reverse();
        chain
    }

    /// Number of horizontal relations.
    pub fn horizontal_count(&self) -> usize {
        self.relations
            .iter()
            .filter(|r| matches!(r, Relation::LeftOf { .. }))
            .count()
    }

    /// Number of vertical relations.
    pub fn vertical_count(&self) -> usize {
        self.relations.len() - self.horizontal_count()
    }

    /// Longest path through the horizontal graph using the given
    /// widths — a lower bound on the required outline width.
    pub fn min_width(&self, widths: &[f64]) -> f64 {
        self.longest_path(widths, true)
    }

    /// Longest path through the vertical graph using the given heights.
    pub fn min_height(&self, heights: &[f64]) -> f64 {
        self.longest_path(heights, false)
    }

    fn longest_path(&self, sizes: &[f64], horizontal: bool) -> f64 {
        let n = self.n;
        assert_eq!(sizes.len(), n, "sizes length mismatch");
        // Collect directed edges.
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for rel in &self.relations {
            let (a, b) = match (rel, horizontal) {
                (Relation::LeftOf { left, right }, true) => (*left, *right),
                (Relation::Below { below, above }, false) => (*below, *above),
                _ => continue,
            };
            succ[a].push(b);
            indeg[b] += 1;
        }
        // Topological longest path (the relation set is acyclic by
        // construction: it is induced by a geometric order).
        let mut dist: Vec<f64> = sizes.to_vec();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut processed = 0;
        while let Some(u) = queue.pop() {
            processed += 1;
            for &v in &succ[u] {
                if dist[u] + sizes[v] > dist[v] {
                    dist[v] = dist[u] + sizes[v];
                }
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        debug_assert_eq!(processed, n, "constraint graph must be acyclic");
        dist.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pair_gets_exactly_one_relation() {
        let outline = Outline::new(10.0, 10.0);
        let pos = [(1.0, 1.0), (5.0, 2.0), (3.0, 8.0), (9.0, 9.0)];
        let g = ConstraintGraph::from_positions(&pos, &outline);
        assert_eq!(g.relations.len(), 6);
        assert_eq!(g.horizontal_count() + g.vertical_count(), 6);
    }

    #[test]
    fn direction_follows_dominant_separation() {
        let outline = Outline::new(10.0, 10.0);
        // Mostly horizontal separation within a square spread.
        let g = ConstraintGraph::from_positions(
            &[(0.0, 0.0), (8.0, 1.0), (4.0, 8.0)],
            &outline,
        );
        assert_eq!(g.relations[0], Relation::LeftOf { left: 0, right: 1 });
        // Mostly vertical separation, with the second module below.
        let g = ConstraintGraph::from_positions(
            &[(1.0, 9.0), (0.5, 1.0), (9.0, 5.0)],
            &outline,
        );
        assert_eq!(g.relations[0], Relation::Below { below: 1, above: 0 });
    }

    #[test]
    fn spread_normalization_prefers_stretched_axis() {
        // The layout is stretched vertically 10:1; a pair with equal
        // dx = dy should relate along x (the tighter axis), since its
        // *relative* x-separation is larger.
        let outline = Outline::new(100.0, 100.0);
        let g = ConstraintGraph::from_positions(
            &[(0.0, 0.0), (5.0, 5.0), (10.0, 100.0)],
            &outline,
        );
        assert!(matches!(g.relations[0], Relation::LeftOf { .. }));
    }

    #[test]
    fn repair_fixes_overfull_row() {
        // Three wide modules in a row inside a square outline that can
        // only fit two side by side: repair must flip one relation.
        let outline = Outline::new(10.0, 10.0);
        let pos = [(2.0, 5.0), (5.0, 5.0), (8.0, 5.0)];
        let mut g = ConstraintGraph::from_positions(&pos, &outline);
        let sizes = [4.0, 4.0, 4.0]; // min width sum 12 > 10
        assert!(g.min_width(&sizes) > 10.0);
        let ok = g.repair(&sizes, &outline, &pos, 20);
        assert!(ok, "repair failed");
        assert!(g.min_width(&sizes) <= 10.0);
        assert!(g.min_height(&sizes) <= 10.0);
    }

    #[test]
    fn longest_path_row_of_blocks() {
        let outline = Outline::new(100.0, 100.0);
        let pos = [(10.0, 50.0), (30.0, 50.0), (50.0, 50.0)];
        let g = ConstraintGraph::from_positions(&pos, &outline);
        // All pairs horizontal: min width = sum of widths.
        assert_eq!(g.min_width(&[5.0, 6.0, 7.0]), 18.0);
        assert_eq!(g.min_height(&[2.0, 3.0, 4.0]), 4.0);
    }

    #[test]
    fn longest_path_grid() {
        let outline = Outline::new(10.0, 10.0);
        // 2x2 grid of centers.
        let pos = [(2.0, 2.0), (8.0, 2.0), (2.0, 8.0), (8.0, 8.0)];
        let g = ConstraintGraph::from_positions(&pos, &outline);
        let w = g.min_width(&[3.0; 4]);
        let h = g.min_height(&[3.0; 4]);
        assert_eq!(w, 6.0);
        assert_eq!(h, 6.0);
    }
}
