//! Floorplan legalization: from module centers to non-overlapping
//! rectangles inside a fixed outline.
//!
//! Mirrors the paper's evaluation pipeline (Section V, following \[2\]
//! and TOFU \[19\]):
//!
//! 1. [`constraint_graph`] — from the global floorplan, every module
//!    pair is assigned a horizontal or a vertical ordering, whichever
//!    direction has the larger normalized separation.
//! 2. [`shape`] — widths, heights and positions are optimized as one
//!    **second-order cone program**: the soft-module area constraint
//!    `w·h ≥ s` is the rotated cone `‖(2√s, w − h)‖ ≤ w + h`, net
//!    HPWL is linearized with per-net bound variables, and the fixed
//!    outline is a set of box constraints. Solved by the workspace's
//!    own ADMM conic solver.
//! 3. The legalized HPWL (module centers + pads) is the number every
//!    table of the paper reports. When the constraint graph forces an
//!    overfull row/column the SOCP is infeasible and legalization
//!    **fails** — exactly the "missing points" of Fig. 4.
//!
//! # Example
//!
//! ```no_run
//! use gfp_legalize::{legalize, LegalizeSettings};
//! use gfp_core::{GlobalFloorplanProblem, ProblemOptions};
//! use gfp_netlist::suite;
//!
//! # fn main() -> Result<(), gfp_legalize::LegalizeError> {
//! let bench = suite::gsrc_n10();
//! let (netlist, outline) = bench.with_pads_on_outline(1.0);
//! let opts = ProblemOptions { outline: Some(outline), aspect_limit: 3.0, ..Default::default() };
//! let problem = GlobalFloorplanProblem::from_netlist(&netlist, &opts)?;
//! let centers = problem.spread_positions();
//! let legal = legalize(&netlist, &problem, &outline, &centers, &LegalizeSettings::default())?;
//! println!("legalized HPWL: {}", legal.hpwl);
//! # Ok(())
//! # }
//! ```

mod error;

pub mod constraint_graph;
pub mod metrics;
pub mod shape;

pub use constraint_graph::{ConstraintGraph, Relation};
pub use error::LegalizeError;
pub use shape::{legalize, LegalFloorplan, LegalizeSettings};
