//! Shape optimization as a second-order cone program.
//!
//! Variables per module: lower-left corner `(x, y)`, width `w`,
//! height `h`. Variables per net: HPWL bounds `Lx ≤ … ≤ Ux`,
//! `Ly ≤ … ≤ Uy`. The objective is the summed (weighted) HPWL; the
//! soft-module area constraint `w·h ≥ s` is the second-order cone
//! `‖(2√s, w − h)‖₂ ≤ w + h`.

use gfp_conic::{AdmmSettings, AdmmSolver, ConeProgramBuilder};
use gfp_core::GlobalFloorplanProblem;
use gfp_netlist::geometry::Rect;
use gfp_netlist::{hpwl, Netlist, Outline, PinRef};
use gfp_telemetry as telemetry;

use crate::constraint_graph::{ConstraintGraph, Relation};
use crate::LegalizeError;

/// Settings for legalization.
#[derive(Debug, Clone)]
pub struct LegalizeSettings {
    /// Conic solver settings.
    pub admm: AdmmSettings,
    /// Relative validation tolerance (area shortfall, overlap depth,
    /// outline escape).
    pub tol: f64,
}

impl Default for LegalizeSettings {
    fn default() -> Self {
        LegalizeSettings {
            admm: AdmmSettings {
                eps: 1e-6,
                max_iter: 30_000,
                ..AdmmSettings::default()
            },
            tol: 5e-3,
        }
    }
}

/// A legalized floorplan.
#[derive(Debug, Clone)]
pub struct LegalFloorplan {
    /// One rectangle per module.
    pub rects: Vec<Rect>,
    /// Exact HPWL of the legalized layout (module centers + pads).
    pub hpwl: f64,
    /// The SOCP objective (the LP-relaxed HPWL bound, diagnostics).
    pub socp_objective: f64,
}

/// Legalizes a global floorplan into the outline.
///
/// Builds the constraint graphs from `centers`, solves the shape SOCP
/// and validates the result.
///
/// # Errors
///
/// * [`LegalizeError::Infeasible`] — the solver could not find a
///   usable solution (overfull constraint graph: the paper's
///   legalization failure).
/// * [`LegalizeError::InvalidShapes`] — solver converged but physical
///   checks fail beyond tolerance.
///
/// # Panics
///
/// Panics if `centers.len()` differs from the module count.
pub fn legalize(
    netlist: &Netlist,
    problem: &GlobalFloorplanProblem,
    outline: &Outline,
    centers: &[(f64, f64)],
    settings: &LegalizeSettings,
) -> Result<LegalFloorplan, LegalizeError> {
    let n = problem.n;
    assert_eq!(centers.len(), n, "centers length mismatch");
    let _legalize_span = telemetry::span("legalize");
    let k = problem.aspect_limit.max(1.0);
    let scale = outline.width;

    // --- constraint graphs + TOFU-style repair ---------------------------
    let graph_span = telemetry::span("legalize.graph");
    let mut graph = ConstraintGraph::from_positions(centers, outline);
    // Flip critical-path relations until shapes fit, trying square
    // shapes first and progressively more compressed ones.
    for shrink in [1.0, 0.85, 0.7, 1.0 / k.sqrt()] {
        let sizes: Vec<f64> = problem
            .areas
            .iter()
            .map(|s| s.sqrt() * shrink)
            .collect();
        if graph.repair(&sizes, outline, centers, 8 * n) {
            break;
        }
    }
    // Quick infeasibility screen with the most compressible shapes.
    let min_w: Vec<f64> = problem
        .areas
        .iter()
        .map(|s| (s / k).sqrt())
        .collect();
    if graph.min_width(&min_w) > outline.width * (1.0 + settings.tol)
        || graph.min_height(&min_w) > outline.height * (1.0 + settings.tol)
    {
        if telemetry::enabled() {
            telemetry::event(
                "legalize.infeasible",
                &[
                    ("modules", (n as u64).into()),
                    ("min_width", graph.min_width(&min_w).into()),
                    ("min_height", graph.min_height(&min_w).into()),
                ],
            );
        }
        return Err(LegalizeError::Infeasible {
            detail: format!(
                "constraint graph needs {:.1} x {:.1}, outline is {:.1} x {:.1}",
                graph.min_width(&min_w),
                graph.min_height(&min_w),
                outline.width,
                outline.height
            ),
        });
    }
    if telemetry::enabled() {
        telemetry::event(
            "legalize.graph",
            &[
                ("modules", (n as u64).into()),
                ("relations", (graph.relations.len() as u64).into()),
            ],
        );
    }
    drop(graph_span);

    // --- variable layout (normalized by outline width) -------------------
    let var_x = |i: usize| 4 * i;
    let var_y = |i: usize| 4 * i + 1;
    let var_w = |i: usize| 4 * i + 2;
    let var_h = |i: usize| 4 * i + 3;
    let nets: Vec<&gfp_netlist::Net> = netlist
        .nets()
        .iter()
        .filter(|e| e.pins.len() >= 2)
        .collect();
    let net_base = 4 * n;
    let var_lx = |e: usize| net_base + 4 * e;
    let var_ux = |e: usize| net_base + 4 * e + 1;
    let var_ly = |e: usize| net_base + 4 * e + 2;
    let var_uy = |e: usize| net_base + 4 * e + 3;
    let num_vars = net_base + 4 * nets.len();
    let mut b = ConeProgramBuilder::new(num_vars);

    // Objective: Σ w_e (Ux − Lx + Uy − Ly).
    for (e, net) in nets.iter().enumerate() {
        b.add_objective_coeff(var_ux(e), net.weight);
        b.add_objective_coeff(var_lx(e), -net.weight);
        b.add_objective_coeff(var_uy(e), net.weight);
        b.add_objective_coeff(var_ly(e), -net.weight);
    }

    let ow = outline.width / scale;
    let oh = outline.height / scale;
    for i in 0..n {
        let s = problem.areas[i] / (scale * scale);
        // Per-module aspect bounds from the netlist override the global
        // limit: aspect = w/h with w·h = s gives w = sqrt(s·aspect).
        let (ar_lo, ar_hi) = netlist.modules()[i]
            .aspect_bounds
            .unwrap_or((1.0 / k, k));
        let wmin = (s * ar_lo).sqrt();
        let wmax = (s * ar_hi).sqrt();
        // Outline box.
        b.add_ge(&[(var_x(i), 1.0)], 0.0);
        b.add_le(&[(var_x(i), 1.0), (var_w(i), 1.0)], ow);
        b.add_ge(&[(var_y(i), 1.0)], 0.0);
        b.add_le(&[(var_y(i), 1.0), (var_h(i), 1.0)], oh);
        // Shape bounds.
        b.add_ge(&[(var_w(i), 1.0)], wmin);
        b.add_le(&[(var_w(i), 1.0)], wmax);
        b.add_ge(&[(var_h(i), 1.0)], wmin);
        b.add_le(&[(var_h(i), 1.0)], wmax);
        // Area: (w + h, 2√s, w − h) ∈ SOC.
        b.add_soc(&[
            (&[(var_w(i), -1.0), (var_h(i), -1.0)], 0.0),
            (&[], 2.0 * s.sqrt()),
            (&[(var_w(i), -1.0), (var_h(i), 1.0)], 0.0),
        ]);
    }

    // Pair separations.
    for rel in &graph.relations {
        match *rel {
            Relation::LeftOf { left, right } => {
                b.add_le(
                    &[(var_x(left), 1.0), (var_w(left), 1.0), (var_x(right), -1.0)],
                    0.0,
                );
            }
            Relation::Below { below, above } => {
                b.add_le(
                    &[(var_y(below), 1.0), (var_h(below), 1.0), (var_y(above), -1.0)],
                    0.0,
                );
            }
        }
    }

    // Net bound rows.
    for (e, net) in nets.iter().enumerate() {
        for pin in &net.pins {
            match pin {
                PinRef::Module(i) => {
                    // Lx ≤ x + w/2  =>  Lx − x − w/2 ≤ 0
                    b.add_le(
                        &[(var_lx(e), 1.0), (var_x(*i), -1.0), (var_w(*i), -0.5)],
                        0.0,
                    );
                    b.add_le(
                        &[(var_x(*i), 1.0), (var_w(*i), 0.5), (var_ux(e), -1.0)],
                        0.0,
                    );
                    b.add_le(
                        &[(var_ly(e), 1.0), (var_y(*i), -1.0), (var_h(*i), -0.5)],
                        0.0,
                    );
                    b.add_le(
                        &[(var_y(*i), 1.0), (var_h(*i), 0.5), (var_uy(e), -1.0)],
                        0.0,
                    );
                }
                PinRef::Pad(p) => {
                    let pad = &netlist.pads()[*p];
                    let (px, py) = (pad.x / scale, pad.y / scale);
                    b.add_le(&[(var_lx(e), 1.0)], px);
                    b.add_ge(&[(var_ux(e), 1.0)], px);
                    b.add_le(&[(var_ly(e), 1.0)], py);
                    b.add_ge(&[(var_uy(e), 1.0)], py);
                }
            }
        }
    }

    // --- warm start -------------------------------------------------------
    let mut warm = vec![0.0; num_vars];
    for i in 0..n {
        let s = problem.areas[i] / (scale * scale);
        let side = s.sqrt();
        let cx = (centers[i].0 / scale).clamp(side / 2.0, ow - side / 2.0);
        let cy = (centers[i].1 / scale).clamp(side / 2.0, oh - side / 2.0);
        warm[var_x(i)] = cx - side / 2.0;
        warm[var_y(i)] = cy - side / 2.0;
        warm[var_w(i)] = side;
        warm[var_h(i)] = side;
    }
    for (e, net) in nets.iter().enumerate() {
        let mut lx = f64::MAX;
        let mut ux = f64::MIN;
        let mut ly = f64::MAX;
        let mut uy = f64::MIN;
        for pin in &net.pins {
            let (cx, cy) = match pin {
                PinRef::Module(i) => (
                    warm[var_x(*i)] + warm[var_w(*i)] / 2.0,
                    warm[var_y(*i)] + warm[var_h(*i)] / 2.0,
                ),
                PinRef::Pad(p) => {
                    let pad = &netlist.pads()[*p];
                    (pad.x / scale, pad.y / scale)
                }
            };
            lx = lx.min(cx);
            ux = ux.max(cx);
            ly = ly.min(cy);
            uy = uy.max(cy);
        }
        warm[var_lx(e)] = lx;
        warm[var_ux(e)] = ux;
        warm[var_ly(e)] = ly;
        warm[var_uy(e)] = uy;
    }

    // --- solve --------------------------------------------------------------
    let socp_span = telemetry::span("legalize.socp");
    let program = b.build()?;
    let solver = AdmmSolver::new(settings.admm.clone());
    let (sol, _trace) = solver.solve_with_trace(&program, Some(&warm))?;
    drop(socp_span);
    // A non-converged solve may still carry physically valid shapes
    // (feasible but not wirelength-optimal); validation below decides.
    let solver_note = if sol.status.is_usable() {
        None
    } else {
        Some(format!(
            "solver status {:?} (primal {:.2e}, dual {:.2e}, gap {:.2e})",
            sol.status,
            sol.info.primal_residual,
            sol.info.dual_residual,
            sol.info.duality_gap
        ))
    };

    // --- extract and validate ----------------------------------------------
    let mut rects: Vec<Rect> = (0..n)
        .map(|i| {
            Rect::new(
                sol.x[var_x(i)] * scale,
                sol.x[var_y(i)] * scale,
                sol.x[var_w(i)] * scale,
                sol.x[var_h(i)] * scale,
            )
        })
        .collect();
    // Inflate any slight area shortfall from solver tolerance, then
    // nudge rectangles back inside the outline.
    for (i, r) in rects.iter_mut().enumerate() {
        let s = problem.areas[i];
        if r.area() < s {
            let f = (s / r.area()).sqrt();
            r.w *= f;
            r.h *= f;
        }
        if r.x < 0.0 {
            r.x = 0.0;
        }
        if r.y < 0.0 {
            r.y = 0.0;
        }
        if r.x + r.w > outline.width {
            r.x = (outline.width - r.w).max(0.0);
        }
        if r.y + r.h > outline.height {
            r.y = (outline.height - r.h).max(0.0);
        }
    }
    if let Err(e) = validate(&rects, problem, outline, settings.tol) {
        return Err(match solver_note {
            Some(note) => LegalizeError::Infeasible {
                detail: format!("{note}; {e}"),
            },
            None => e,
        });
    }

    let centers: Vec<(f64, f64)> = rects.iter().map(Rect::center).collect();
    let wl = hpwl::hpwl(netlist, &centers);
    if telemetry::enabled() {
        telemetry::event(
            "legalize.done",
            &[
                ("modules", (n as u64).into()),
                ("hpwl", wl.into()),
                ("socp_objective", (sol.objective * scale).into()),
            ],
        );
    }
    Ok(LegalFloorplan {
        rects,
        hpwl: wl,
        socp_objective: sol.objective * scale,
    })
}

/// Physical validation of the legalized shapes.
fn validate(
    rects: &[Rect],
    problem: &GlobalFloorplanProblem,
    outline: &Outline,
    tol: f64,
) -> Result<(), LegalizeError> {
    let lin_tol = tol * outline.width.max(outline.height);
    for (i, r) in rects.iter().enumerate() {
        if r.w <= 0.0 || r.h <= 0.0 {
            return Err(LegalizeError::InvalidShapes {
                detail: format!("module {i} has non-positive size {r:?}"),
            });
        }
        if r.area() < problem.areas[i] * (1.0 - tol) {
            return Err(LegalizeError::InvalidShapes {
                detail: format!(
                    "module {i} area {:.2} below requirement {:.2}",
                    r.area(),
                    problem.areas[i]
                ),
            });
        }
        if r.x < -lin_tol
            || r.y < -lin_tol
            || r.x + r.w > outline.width + lin_tol
            || r.y + r.h > outline.height + lin_tol
        {
            return Err(LegalizeError::InvalidShapes {
                detail: format!("module {i} escapes the outline: {r:?}"),
            });
        }
    }
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            if rects[i].overlaps_with_tol(&rects[j], lin_tol) {
                return Err(LegalizeError::InvalidShapes {
                    detail: format!(
                        "modules {i} and {j} overlap: {:?} vs {:?}",
                        rects[i], rects[j]
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfp_core::ProblemOptions;
    use gfp_netlist::suite;

    fn setup(ratio: f64) -> (Netlist, GlobalFloorplanProblem, Outline) {
        let b = suite::gsrc_n10();
        let (nl, outline) = b.with_pads_on_outline(ratio);
        let p = GlobalFloorplanProblem::from_netlist(
            &nl,
            &ProblemOptions {
                outline: Some(outline),
                aspect_limit: 3.0,
                ..ProblemOptions::default()
            },
        )
        .unwrap();
        (nl, p, outline)
    }

    /// A sane hand layout: grid positions inside the outline, with the
    /// grid shape adapted to the outline aspect ratio.
    fn grid_centers(n: usize, outline: &Outline) -> Vec<(f64, f64)> {
        let cols = ((n as f64 * outline.width / outline.height).sqrt().ceil() as usize).max(1);
        let rows = n.div_ceil(cols);
        (0..n)
            .map(|i| {
                let cx = ((i % cols) as f64 + 0.5) / cols as f64 * outline.width;
                let cy = ((i / cols) as f64 + 0.5) / rows as f64 * outline.height;
                (cx, cy)
            })
            .collect()
    }

    #[test]
    fn legalizes_grid_layout() {
        let (nl, p, outline) = setup(1.0);
        let centers = grid_centers(10, &outline);
        let legal = legalize(&nl, &p, &outline, &centers, &LegalizeSettings::default())
            .expect("grid layout legalizes");
        assert_eq!(legal.rects.len(), 10);
        assert!(legal.hpwl > 0.0);
        // Validation invariants re-checked here explicitly.
        for (i, r) in legal.rects.iter().enumerate() {
            assert!(r.area() >= p.areas[i] * 0.999, "module {i} area");
            let ar = r.aspect();
            assert!(ar >= 1.0 / 3.1 && ar <= 3.1, "module {i} aspect {ar}");
        }
    }

    #[test]
    fn legalization_fails_in_tiny_outline() {
        let (nl, p, _outline) = setup(1.0);
        let tiny = Outline::new(10.0, 10.0); // way below total area
        let centers = grid_centers(10, &tiny);
        let err = legalize(&nl, &p, &tiny, &centers, &LegalizeSettings::default());
        assert!(matches!(err, Err(LegalizeError::Infeasible { .. })));
    }

    #[test]
    fn legalized_hpwl_improves_for_better_global_floorplans() {
        // A wirelength-aware layout (QP-ish ordering) must legalize to
        // a lower HPWL than a random scattering, demonstrating that
        // the legalizer preserves global-floorplan quality ordering.
        let (nl, p, outline) = setup(1.0);
        let good = grid_centers(10, &outline);
        // Scrambled: same grid slots, permuted badly.
        let mut bad = good.clone();
        bad.reverse();
        bad.swap(0, 5);
        bad.swap(2, 7);
        let lg = legalize(&nl, &p, &outline, &good, &LegalizeSettings::default());
        let lb = legalize(&nl, &p, &outline, &bad, &LegalizeSettings::default());
        if let (Ok(lg), Ok(lb)) = (lg, lb) {
            // Not a strict guarantee, but the scrambled layout should
            // essentially never win on this seed.
            assert!(
                lg.hpwl <= lb.hpwl * 1.3,
                "good {} vs bad {}",
                lg.hpwl,
                lb.hpwl
            );
        }
    }

    #[test]
    fn respects_one_two_aspect_outline() {
        let (nl, p, outline) = setup(2.0);
        let centers = grid_centers(10, &outline);
        let legal = legalize(&nl, &p, &outline, &centers, &LegalizeSettings::default())
            .expect("1:2 outline legalizes");
        let tol = 1e-6 * outline.height;
        for r in &legal.rects {
            assert!(r.x >= -tol && r.x + r.w <= outline.width + tol);
            assert!(r.y >= -tol && r.y + r.h <= outline.height + tol);
        }
    }
}

#[cfg(test)]
mod aspect_bounds_tests {
    use super::*;
    use gfp_core::ProblemOptions;
    use gfp_netlist::{suite, Netlist};

    /// A module with tight per-module aspect bounds legalizes to a
    /// nearly square shape even though the global limit allows 1:3.
    #[test]
    fn per_module_bounds_override_global_limit() {
        let b = suite::gsrc_n10();
        let (nl, outline) = b.with_pads_on_outline(1.0);
        let mut modules = nl.modules().to_vec();
        modules[0] = modules[0].clone().with_aspect_bounds(0.95, 1.05);
        let nl = Netlist::new(modules, nl.pads().to_vec(), nl.nets().to_vec()).unwrap();
        let p = GlobalFloorplanProblem::from_netlist(
            &nl,
            &ProblemOptions {
                outline: Some(outline),
                aspect_limit: 3.0,
                ..ProblemOptions::default()
            },
        )
        .unwrap();
        // A simple grid layout.
        let centers: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                (
                    ((i % 4) as f64 + 0.5) / 4.0 * outline.width,
                    ((i / 4) as f64 + 0.5) / 3.0 * outline.height,
                )
            })
            .collect();
        let legal = legalize(&nl, &p, &outline, &centers, &LegalizeSettings::default())
            .expect("legalizes");
        let ar = legal.rects[0].aspect();
        assert!(
            (0.90..=1.10).contains(&ar),
            "module 0 aspect {ar} escaped its per-module bounds"
        );
    }
}
