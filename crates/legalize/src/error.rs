use std::error::Error;
use std::fmt;

use gfp_conic::ConicError;
use gfp_core::FloorplanError;

/// Errors from legalization.
#[derive(Debug)]
#[non_exhaustive]
pub enum LegalizeError {
    /// The shape SOCP did not reach a usable solution — the global
    /// floorplan's constraint graph does not fit the outline (the
    /// paper's "failure during legalization").
    Infeasible {
        /// Diagnostic detail (solver status, residuals).
        detail: String,
    },
    /// The solved shapes violate physical checks beyond tolerance
    /// (overlap or outline escape) despite solver convergence.
    InvalidShapes {
        /// What failed.
        detail: String,
    },
    /// Problem definition errors.
    Floorplan(FloorplanError),
    /// Conic solver errors.
    Conic(ConicError),
}

impl fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalizeError::Infeasible { detail } => {
                write!(f, "legalization infeasible: {detail}")
            }
            LegalizeError::InvalidShapes { detail } => {
                write!(f, "legalized shapes failed validation: {detail}")
            }
            LegalizeError::Floorplan(e) => write!(f, "problem error: {e}"),
            LegalizeError::Conic(e) => write!(f, "conic solver error: {e}"),
        }
    }
}

impl Error for LegalizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LegalizeError::Floorplan(e) => Some(e),
            LegalizeError::Conic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FloorplanError> for LegalizeError {
    fn from(e: FloorplanError) -> Self {
        LegalizeError::Floorplan(e)
    }
}

impl From<ConicError> for LegalizeError {
    fn from(e: ConicError) -> Self {
        LegalizeError::Conic(e)
    }
}
