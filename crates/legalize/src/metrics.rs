//! Floorplan quality metrics beyond HPWL: whitespace, aspect spread,
//! displacement from the global floorplan, and overlap accounting.
//!
//! Used by the experiment harness to report the secondary columns EDA
//! papers commonly track, and handy when comparing legalizers.

use gfp_netlist::geometry::Rect;
use gfp_netlist::Outline;

/// A bundle of layout statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutMetrics {
    /// Fraction of the outline not covered by modules (0..1).
    pub whitespace: f64,
    /// Worst module aspect ratio, reported as `max(w/h, h/w) ≥ 1`.
    pub max_aspect: f64,
    /// Mean module aspect ratio (same normalization).
    pub mean_aspect: f64,
    /// Total pairwise overlap area (0 for a legal floorplan).
    pub overlap_area: f64,
    /// Bounding box of the placed modules (may be smaller than the
    /// outline).
    pub used_width: f64,
    /// See [`used_width`](Self::used_width).
    pub used_height: f64,
}

/// Computes layout statistics for a set of placed rectangles.
///
/// # Panics
///
/// Panics if `rects` is empty.
pub fn layout_metrics(rects: &[Rect], outline: &Outline) -> LayoutMetrics {
    assert!(!rects.is_empty(), "metrics need at least one rectangle");
    let module_area: f64 = rects.iter().map(Rect::area).sum();
    let mut overlap_area = 0.0;
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            overlap_area += rects[i].overlap_area(&rects[j]);
        }
    }
    let aspects: Vec<f64> = rects
        .iter()
        .map(|r| {
            let a = r.aspect();
            a.max(1.0 / a)
        })
        .collect();
    let used_width = rects.iter().map(|r| r.x + r.w).fold(0.0, f64::max)
        - rects.iter().map(|r| r.x).fold(f64::MAX, f64::min);
    let used_height = rects.iter().map(|r| r.y + r.h).fold(0.0, f64::max)
        - rects.iter().map(|r| r.y).fold(f64::MAX, f64::min);
    LayoutMetrics {
        whitespace: 1.0 - (module_area - overlap_area) / outline.area(),
        max_aspect: aspects.iter().cloned().fold(1.0, f64::max),
        mean_aspect: aspects.iter().sum::<f64>() / aspects.len() as f64,
        overlap_area,
        used_width,
        used_height,
    }
}

/// Mean and maximum displacement between global-floorplan centers and
/// the legalized centers — how much legalization moved things.
///
/// # Panics
///
/// Panics if the lengths differ or are zero.
pub fn displacement(global: &[(f64, f64)], rects: &[Rect]) -> (f64, f64) {
    assert_eq!(global.len(), rects.len(), "length mismatch");
    assert!(!global.is_empty(), "empty layout");
    let mut total = 0.0;
    let mut max: f64 = 0.0;
    for (g, r) in global.iter().zip(rects.iter()) {
        let (cx, cy) = r.center();
        let d = ((g.0 - cx).powi(2) + (g.1 - cy).powi(2)).sqrt();
        total += d;
        max = max.max(d);
    }
    (total / global.len() as f64, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_of_a_perfect_tiling() {
        let outline = Outline::new(4.0, 2.0);
        let rects = vec![
            Rect::new(0.0, 0.0, 2.0, 2.0),
            Rect::new(2.0, 0.0, 2.0, 2.0),
        ];
        let m = layout_metrics(&rects, &outline);
        assert!(m.whitespace.abs() < 1e-12);
        assert_eq!(m.max_aspect, 1.0);
        assert_eq!(m.overlap_area, 0.0);
        assert_eq!(m.used_width, 4.0);
        assert_eq!(m.used_height, 2.0);
    }

    #[test]
    fn overlap_counts_once_per_pair() {
        let outline = Outline::new(10.0, 10.0);
        let rects = vec![
            Rect::new(0.0, 0.0, 2.0, 2.0),
            Rect::new(1.0, 1.0, 2.0, 2.0),
        ];
        let m = layout_metrics(&rects, &outline);
        assert!((m.overlap_area - 1.0).abs() < 1e-12);
        // Whitespace accounts for double counting: covered = 8 − 1 = 7.
        assert!((m.whitespace - (1.0 - 7.0 / 100.0)).abs() < 1e-12);
    }

    #[test]
    fn aspect_normalization() {
        let outline = Outline::new(10.0, 10.0);
        let rects = vec![
            Rect::new(0.0, 0.0, 4.0, 1.0), // aspect 4
            Rect::new(5.0, 0.0, 1.0, 4.0), // aspect 1/4 → normalized 4
        ];
        let m = layout_metrics(&rects, &outline);
        assert_eq!(m.max_aspect, 4.0);
        assert_eq!(m.mean_aspect, 4.0);
    }

    #[test]
    fn displacement_math() {
        let global = vec![(1.0, 1.0), (5.0, 5.0)];
        let rects = vec![
            Rect::new(0.0, 0.0, 2.0, 2.0), // center (1,1): zero displacement
            Rect::new(5.0, 2.0, 2.0, 2.0), // center (6,3): distance sqrt(1+4)
        ];
        let (mean, max) = displacement(&global, &rects);
        let d = 5.0_f64.sqrt();
        assert!((max - d).abs() < 1e-12);
        assert!((mean - d / 2.0).abs() < 1e-12);
    }
}
