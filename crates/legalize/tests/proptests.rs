//! Property-based tests for constraint graphs: every random layout
//! yields an acyclic, complete relation set, and repair never breaks
//! those invariants. Driven by deterministic seeded loops over the
//! workspace PRNG.

use gfp_legalize::constraint_graph::{ConstraintGraph, Relation};
use gfp_netlist::Outline;
use gfp_rand::Rng;

const CASES: u64 = 128;

fn random_positions(rng: &mut Rng, n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        .collect()
}

/// Detects cycles in one direction of the relation set.
fn is_acyclic(g: &ConstraintGraph, horizontal: bool) -> bool {
    let n = g.n;
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for rel in &g.relations {
        let (a, b) = match (rel, horizontal) {
            (Relation::LeftOf { left, right }, true) => (*left, *right),
            (Relation::Below { below, above }, false) => (*below, *above),
            _ => continue,
        };
        succ[a].push(b);
        indeg[b] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &v in &succ[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    seen == n
}

#[test]
fn graphs_are_complete_and_acyclic() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let pos = random_positions(&mut rng, 8);
        let outline = Outline::new(100.0, 100.0);
        let g = ConstraintGraph::from_positions(&pos, &outline);
        assert_eq!(g.relations.len(), 8 * 7 / 2, "seed {seed}");
        assert!(is_acyclic(&g, true), "seed {seed}: horizontal cycle");
        assert!(is_acyclic(&g, false), "seed {seed}: vertical cycle");
    }
}

#[test]
fn repair_preserves_acyclicity() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(1000 + seed);
        let pos = random_positions(&mut rng, 7);
        // A deliberately tiny outline forces many repair flips.
        let outline = Outline::new(12.0, 12.0);
        let mut g = ConstraintGraph::from_positions(&pos, &outline);
        let sizes = vec![4.0; 7];
        let _ = g.repair(&sizes, &outline, &pos, 100);
        assert_eq!(g.relations.len(), 7 * 6 / 2, "seed {seed}");
        assert!(
            is_acyclic(&g, true),
            "seed {seed}: horizontal cycle after repair"
        );
        assert!(
            is_acyclic(&g, false),
            "seed {seed}: vertical cycle after repair"
        );
    }
}

#[test]
fn min_extents_monotone_in_sizes() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(2000 + seed);
        let pos = random_positions(&mut rng, 6);
        let scale = rng.gen_range(1.0..3.0);
        let outline = Outline::new(100.0, 100.0);
        let g = ConstraintGraph::from_positions(&pos, &outline);
        let small = vec![2.0; 6];
        let big: Vec<f64> = small.iter().map(|s| s * scale).collect();
        assert!(g.min_width(&big) >= g.min_width(&small), "seed {seed}");
        assert!(g.min_height(&big) >= g.min_height(&small), "seed {seed}");
        // Exact scaling: uniform size scaling scales the longest path.
        assert!(
            (g.min_width(&big) - scale * g.min_width(&small)).abs() < 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn successful_repair_really_fits() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(3000 + seed);
        let pos = random_positions(&mut rng, 6);
        let outline = Outline::new(30.0, 30.0);
        let mut g = ConstraintGraph::from_positions(&pos, &outline);
        let sizes = vec![6.0; 6]; // total area 216 in a 900 outline: fits
        if g.repair(&sizes, &outline, &pos, 100) {
            assert!(g.min_width(&sizes) <= outline.width + 1e-9, "seed {seed}");
            assert!(g.min_height(&sizes) <= outline.height + 1e-9, "seed {seed}");
        }
    }
}
