//! Aligned-table printing and CSV output for the experiment binaries.

use std::fs;
use std::path::Path;

/// A simple column-aligned text table with a CSV twin.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for c in 0..cols {
            width[c] = self.header[c].chars().count();
            for r in &self.rows {
                width[c] = width[c].max(r[c].chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                let pad = width[c] - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV twin under `results/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut csv = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        csv.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        csv.push('\n');
        for r in &self.rows {
            csv.push_str(&r.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            csv.push('\n');
        }
        fs::write(&path, csv)?;
        Ok(path)
    }
}

/// Formats an optional HPWL value (`-` for legalization failures, as
/// the paper renders missing points).
pub fn fmt_hpwl(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.0}"),
        None => "fail".to_string(),
    }
}

/// Formats an optional percentage.
pub fn fmt_pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:+.2}%"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.add_row(vec!["n10", "36277"]);
        t.add_row(vec!["longer-name", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("n10"));
        // Columns align: "value" column starts at the same offset.
        let off0 = lines[0].find("value").unwrap();
        let off2 = lines[2].find("36277").unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_hpwl(Some(1234.6)), "1235");
        assert_eq!(fmt_hpwl(None), "fail");
        assert_eq!(fmt_pct(Some(14.713)), "+14.71%");
        assert_eq!(fmt_pct(None), "-");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_length_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only-one"]);
    }
}
