//! `--trace` bootstrap shared by the experiment binaries.
//!
//! Every binary calls [`init_from_args`] first thing in `main` and
//! [`finish`] on the way out. Tracing turns on when `--trace` is
//! passed on the command line or `GFP_TRACE` names a trace file; with
//! `GFP_TRACE` set, solver events additionally stream to that path as
//! JSONL (one object per line).

use gfp_telemetry as telemetry;

/// Enables telemetry when `--trace` is on the command line or the
/// `GFP_TRACE` environment variable names a trace file. Returns
/// whether telemetry was enabled (pass it to [`finish`]).
pub fn init_from_args() -> bool {
    let flagged = std::env::args().any(|a| a == "--trace");
    let env_set = std::env::var_os("GFP_TRACE").is_some_and(|v| !v.is_empty());
    if flagged || env_set {
        telemetry::init_from_env();
        true
    } else {
        false
    }
}

/// Prints the end-of-run span-tree summary and flushes the trace
/// sink. No-op when `enabled` is false.
pub fn finish(enabled: bool) {
    if enabled {
        println!("\n{}", telemetry::summary_report());
        telemetry::flush();
    }
}
