//! Minimal std-only micro-benchmark harness.
//!
//! The offline build cannot fetch `criterion`, so the `benches/`
//! targets (all `harness = false`) drive their measurements through
//! this module instead: warm up once, run a fixed number of timed
//! samples, and report min / mean / max wall time per sample.
//! Deterministic sample counts keep runs comparable between commits;
//! no statistics are estimated beyond the three reported figures.

use std::hint::black_box;
use std::time::Instant;

/// A named group of related measurements, printed as an aligned block.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Self {
        println!("== {name} ==");
        Group { name: name.to_string() }
    }

    /// Runs `f` once to warm up, then `samples` timed times, and
    /// prints one result line. Returns the mean seconds per sample.
    pub fn bench<R, F: FnMut() -> R>(&self, id: &str, samples: usize, mut f: F) -> f64 {
        assert!(samples > 0, "need at least one sample");
        black_box(f());
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64());
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / samples as f64;
        println!(
            "{}/{id:<28} {samples:>3} samples  min {}  mean {}  max {}",
            self.name,
            format_secs(min),
            format_secs(mean),
            format_secs(max),
        );
        mean
    }
}

/// Human-readable seconds with an adaptive unit.
fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>8.3} s")
    } else if s >= 1e-3 {
        format!("{:>8.3} ms", s * 1e3)
    } else {
        format!("{:>8.3} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_mean() {
        let g = Group::new("test");
        let mean = g.bench("spin", 3, || (0..1000u64).sum::<u64>());
        assert!(mean >= 0.0);
    }

    #[test]
    fn formats_pick_sensible_units() {
        assert!(format_secs(2.5).ends_with(" s"));
        assert!(format_secs(0.002).ends_with(" ms"));
        assert!(format_secs(2e-6).ends_with(" µs"));
    }
}
