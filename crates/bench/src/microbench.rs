//! Minimal std-only micro-benchmark harness.
//!
//! The offline build cannot fetch `criterion`, so the `benches/`
//! targets (all `harness = false`) drive their measurements through
//! this module instead: warm up once, run a fixed number of timed
//! samples, and report min / mean / max wall time per sample.
//! Deterministic sample counts keep runs comparable between commits;
//! no statistics are estimated beyond the three reported figures.

use std::hint::black_box;
use std::time::Instant;

/// A named group of related measurements, printed as an aligned block.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Self {
        println!("== {name} ==");
        Group { name: name.to_string() }
    }

    /// Runs `f` once to warm up, then `samples` timed times, and
    /// prints one result line. Returns the mean seconds per sample.
    pub fn bench<R, F: FnMut() -> R>(&self, id: &str, samples: usize, mut f: F) -> f64 {
        assert!(samples > 0, "need at least one sample");
        black_box(f());
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64());
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / samples as f64;
        println!(
            "{}/{id:<28} {samples:>3} samples  min {}  mean {}  max {}",
            self.name,
            format_secs(min),
            format_secs(mean),
            format_secs(max),
        );
        mean
    }
}

/// One serial-vs-parallel kernel measurement destined for
/// `BENCH_kernels.json`.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name (`matmul`, `eigh`, `project_psd`, `lanczos`,
    /// `subproblem2`).
    pub kernel: String,
    /// Problem size (matrix dimension).
    pub n: usize,
    /// Mean seconds per call on a 1-worker pool.
    pub serial_secs: f64,
    /// Mean seconds per call on the parallel pool.
    pub parallel_secs: f64,
    /// Whether serial and parallel outputs were bitwise identical.
    pub bitwise_match: bool,
}

impl KernelRecord {
    /// Serial-over-parallel wall-time ratio (>1 means the pool wins).
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            0.0
        }
    }
}

/// Spectral fast-path measurements: dense-vs-deflated sub-problem 2
/// timings plus the telemetry hit/fallback counts accumulated over the
/// benchmark run.
#[derive(Debug, Clone, Default)]
pub struct FastpathReport {
    /// `kernel.lanczos.calls` delta over the run.
    pub lanczos_calls: u64,
    /// `kernel.eigh_partial.hit` delta (accepted fast-path solves).
    pub eigh_partial_hits: u64,
    /// `kernel.eigh_partial.fallback` delta (rejected, dense route).
    pub eigh_partial_fallbacks: u64,
    /// Mean seconds per dense sub-problem-2 solve (fast path off).
    pub subproblem2_dense_secs: f64,
    /// Mean seconds per deflated sub-problem-2 solve (fast path on).
    pub subproblem2_fast_secs: f64,
    /// `|W_fast − W_dense|∞` on the measured instance.
    pub w_max_diff: f64,
    /// Relative rank-gap difference on the measured instance.
    pub gap_rel_diff: f64,
}

impl FastpathReport {
    /// Fraction of gated sub-problem-2/PSD calls the fast path served.
    pub fn hit_rate(&self) -> f64 {
        let total = self.eigh_partial_hits + self.eigh_partial_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.eigh_partial_hits as f64 / total as f64
        }
    }

    /// Dense-over-fast wall-time ratio for sub-problem 2.
    pub fn speedup(&self) -> f64 {
        if self.subproblem2_fast_secs > 0.0 {
            self.subproblem2_dense_secs / self.subproblem2_fast_secs
        } else {
            0.0
        }
    }
}

/// End-to-end supervised-solve measurements on one suite instance.
#[derive(Debug, Clone)]
pub struct E2eReport {
    /// Suite instance name (e.g. `gsrc_n200`).
    pub instance: String,
    /// Seconds for the pre-PR configuration (fast path off, ADMM
    /// reuse off).
    pub baseline_secs: f64,
    /// Seconds with the spectral fast path and ADMM reuse on.
    pub fast_secs: f64,
    /// Final HPWL of the all-on run.
    pub hpwl_fast: f64,
    /// Final HPWL with the fast path off (reuse still on) — isolates
    /// the spectral approximation's effect on quality.
    pub hpwl_no_fastpath: f64,
    /// `admm.warm_reuse` delta over the all-on run.
    pub admm_warm_reuse: u64,
    /// Whether the all-on run is bitwise identical at 1, 2 and 8
    /// workers.
    pub bitwise_match_threads: bool,
}

impl E2eReport {
    /// Baseline-over-fast wall-time ratio (>1: the fast paths win).
    pub fn speedup(&self) -> f64 {
        if self.fast_secs > 0.0 {
            self.baseline_secs / self.fast_secs
        } else {
            0.0
        }
    }

    /// Relative HPWL difference between fast-path-on and -off runs.
    pub fn hpwl_rel_diff(&self) -> f64 {
        (self.hpwl_fast - self.hpwl_no_fastpath).abs() / (1.0 + self.hpwl_no_fastpath.abs())
    }
}

/// Durable-checkpoint overhead measurements: what one per-round
/// snapshot of a real solver state costs, split into pure encoding and
/// the full atomic write (temp file + fsync + rename).
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// Suite instance whose outer state was snapshotted.
    pub instance: String,
    /// Encoded snapshot payload size in bytes.
    pub state_bytes: usize,
    /// Seconds to encode the outer state (no I/O).
    pub encode_secs: f64,
    /// Seconds for the full durable write (encode + temp + fsync +
    /// rename) — the per-round cost a checkpointing solve pays.
    pub write_secs: f64,
    /// Wall seconds of one solver round on the same instance, for
    /// context: `write_secs / round_secs` is the relative overhead.
    pub round_secs: f64,
}

impl CheckpointReport {
    /// Per-round overhead of durable checkpointing, as a fraction of
    /// the round's own wall time.
    pub fn overhead_frac(&self) -> f64 {
        if self.round_secs > 0.0 {
            self.write_secs / self.round_secs
        } else {
            0.0
        }
    }
}

/// Telemetry overhead measurements: what full observability costs —
/// structured-event throughput through a real JSONL file sink, and the
/// encode + write price of one [`SolveReport`] snapshot.
///
/// [`SolveReport`]: https://docs.rs/gfp-telemetry
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Structured events per second sustained through a JSONL file
    /// sink (two fields per event, buffered writer).
    pub events_per_sec: f64,
    /// Rounds in the measured solve report (context for the sizes).
    pub report_rounds: usize,
    /// Encoded report size in bytes.
    pub report_bytes: usize,
    /// Seconds to encode the report to JSON (no I/O).
    pub report_encode_secs: f64,
    /// Seconds for encode plus the file write — the one-time cost a
    /// `GFP_REPORT` run pays at exit.
    pub report_write_secs: f64,
}

/// Writes the tracked kernel baseline as a JSON document
/// (`gfp-kernel-bench-v3`).
///
/// Hand-rolled serialization (the workspace is offline and std-only),
/// matching the telemetry crate's JSONL conventions. `requested`
/// workers is the configured pool width, `effective` the width after
/// clamping to the host's CPU count — speedup columns are only
/// meaningful relative to the effective width.
///
/// # Errors
///
/// Propagates I/O failures from writing `path`.
pub fn write_kernel_report(
    path: &std::path::Path,
    requested_workers: usize,
    effective_workers: usize,
    records: &[KernelRecord],
    fastpath: Option<&FastpathReport>,
    checkpoint: Option<&CheckpointReport>,
    telemetry: Option<&TelemetryReport>,
    e2e: Option<&E2eReport>,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"gfp-kernel-bench-v3\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    ));
    out.push_str(&format!(
        "  \"requested_workers\": {requested_workers},\n"
    ));
    out.push_str(&format!(
        "  \"effective_workers\": {effective_workers},\n"
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"serial_secs\": {:.9}, \
             \"parallel_secs\": {:.9}, \"speedup\": {:.4}, \"bitwise_match\": {}}}{}\n",
            r.kernel,
            r.n,
            r.serial_secs,
            r.parallel_secs,
            r.speedup(),
            r.bitwise_match,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    match fastpath {
        Some(f) => out.push_str(&format!(
            "  \"fastpath\": {{\"lanczos_calls\": {}, \"eigh_partial_hits\": {}, \
             \"eigh_partial_fallbacks\": {}, \"hit_rate\": {:.4}, \
             \"subproblem2_dense_secs\": {:.9}, \"subproblem2_fast_secs\": {:.9}, \
             \"speedup\": {:.4}, \"w_max_diff\": {:.3e}, \"gap_rel_diff\": {:.3e}}},\n",
            f.lanczos_calls,
            f.eigh_partial_hits,
            f.eigh_partial_fallbacks,
            f.hit_rate(),
            f.subproblem2_dense_secs,
            f.subproblem2_fast_secs,
            f.speedup(),
            f.w_max_diff,
            f.gap_rel_diff,
        )),
        None => out.push_str("  \"fastpath\": null,\n"),
    }
    match checkpoint {
        Some(c) => out.push_str(&format!(
            "  \"checkpoint\": {{\"instance\": \"{}\", \"state_bytes\": {}, \
             \"encode_secs\": {:.9}, \"write_secs\": {:.9}, \"round_secs\": {:.9}, \
             \"overhead_frac\": {:.6}}},\n",
            c.instance,
            c.state_bytes,
            c.encode_secs,
            c.write_secs,
            c.round_secs,
            c.overhead_frac(),
        )),
        None => out.push_str("  \"checkpoint\": null,\n"),
    }
    match telemetry {
        Some(t) => out.push_str(&format!(
            "  \"telemetry\": {{\"events_per_sec\": {:.0}, \"report_rounds\": {}, \
             \"report_bytes\": {}, \"report_encode_secs\": {:.9}, \
             \"report_write_secs\": {:.9}}},\n",
            t.events_per_sec,
            t.report_rounds,
            t.report_bytes,
            t.report_encode_secs,
            t.report_write_secs,
        )),
        None => out.push_str("  \"telemetry\": null,\n"),
    }
    match e2e {
        Some(e) => out.push_str(&format!(
            "  \"e2e\": {{\"instance\": \"{}\", \"baseline_secs\": {:.3}, \
             \"fast_secs\": {:.3}, \"speedup\": {:.4}, \"hpwl_fast\": {:.6}, \
             \"hpwl_no_fastpath\": {:.6}, \"hpwl_rel_diff\": {:.3e}, \
             \"admm_warm_reuse\": {}, \"bitwise_match\": {}}}\n",
            e.instance,
            e.baseline_secs,
            e.fast_secs,
            e.speedup(),
            e.hpwl_fast,
            e.hpwl_no_fastpath,
            e.hpwl_rel_diff(),
            e.admm_warm_reuse,
            e.bitwise_match_threads,
        )),
        None => out.push_str("  \"e2e\": null\n"),
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Human-readable seconds with an adaptive unit.
fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>8.3} s")
    } else if s >= 1e-3 {
        format!("{:>8.3} ms", s * 1e3)
    } else {
        format!("{:>8.3} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_mean() {
        let g = Group::new("test");
        let mean = g.bench("spin", 3, || (0..1000u64).sum::<u64>());
        assert!(mean >= 0.0);
    }

    #[test]
    fn kernel_report_is_valid_shape() {
        let rec = KernelRecord {
            kernel: "matmul".into(),
            n: 50,
            serial_secs: 2.0e-3,
            parallel_secs: 1.0e-3,
            bitwise_match: true,
        };
        assert!((rec.speedup() - 2.0).abs() < 1e-12);
        let fast = FastpathReport {
            lanczos_calls: 10,
            eigh_partial_hits: 6,
            eigh_partial_fallbacks: 2,
            subproblem2_dense_secs: 4.0e-3,
            subproblem2_fast_secs: 1.0e-3,
            w_max_diff: 1e-9,
            gap_rel_diff: 1e-12,
        };
        assert!((fast.hit_rate() - 0.75).abs() < 1e-12);
        assert!((fast.speedup() - 4.0).abs() < 1e-12);
        let e2e = E2eReport {
            instance: "gsrc_n200".into(),
            baseline_secs: 30.0,
            fast_secs: 15.0,
            hpwl_fast: 1000.0,
            hpwl_no_fastpath: 1000.0001,
            admm_warm_reuse: 7,
            bitwise_match_threads: true,
        };
        assert!((e2e.speedup() - 2.0).abs() < 1e-12);
        assert!(e2e.hpwl_rel_diff() < 1e-6);
        let ckpt = CheckpointReport {
            instance: "gsrc_n200".into(),
            state_bytes: 1_500_000,
            encode_secs: 2.0e-3,
            write_secs: 8.0e-3,
            round_secs: 4.0,
        };
        assert!((ckpt.overhead_frac() - 0.002).abs() < 1e-12);
        let tel = TelemetryReport {
            events_per_sec: 250_000.0,
            report_rounds: 6,
            report_bytes: 40_000,
            report_encode_secs: 1.0e-4,
            report_write_secs: 5.0e-4,
        };
        let dir = std::env::temp_dir().join("gfp_kernel_report_test.json");
        write_kernel_report(&dir, 4, 1, &[rec], Some(&fast), Some(&ckpt), Some(&tel), Some(&e2e))
            .unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"schema\": \"gfp-kernel-bench-v3\""));
        assert!(text.contains("\"requested_workers\": 4"));
        assert!(text.contains("\"effective_workers\": 1"));
        assert!(text.contains("\"speedup\": 2.0000"));
        assert!(text.contains("\"hit_rate\": 0.7500"));
        assert!(text.contains("\"instance\": \"gsrc_n200\""));
        assert!(text.contains("\"state_bytes\": 1500000"));
        assert!(text.contains("\"overhead_frac\": 0.002000"));
        assert!(text.contains("\"events_per_sec\": 250000"));
        assert!(text.contains("\"report_bytes\": 40000"));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn report_without_optional_sections_emits_nulls() {
        let dir = std::env::temp_dir().join("gfp_kernel_report_null_test.json");
        write_kernel_report(&dir, 2, 2, &[], None, None, None, None).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"fastpath\": null"));
        assert!(text.contains("\"checkpoint\": null"));
        assert!(text.contains("\"telemetry\": null"));
        assert!(text.contains("\"e2e\": null"));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn formats_pick_sensible_units() {
        assert!(format_secs(2.5).ends_with(" s"));
        assert!(format_secs(0.002).ends_with(" ms"));
        assert!(format_secs(2e-6).ends_with(" µs"));
    }
}
