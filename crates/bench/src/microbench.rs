//! Minimal std-only micro-benchmark harness.
//!
//! The offline build cannot fetch `criterion`, so the `benches/`
//! targets (all `harness = false`) drive their measurements through
//! this module instead: warm up once, run a fixed number of timed
//! samples, and report min / mean / max wall time per sample.
//! Deterministic sample counts keep runs comparable between commits;
//! no statistics are estimated beyond the three reported figures.

use std::hint::black_box;
use std::time::Instant;

/// A named group of related measurements, printed as an aligned block.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Self {
        println!("== {name} ==");
        Group { name: name.to_string() }
    }

    /// Runs `f` once to warm up, then `samples` timed times, and
    /// prints one result line. Returns the mean seconds per sample.
    pub fn bench<R, F: FnMut() -> R>(&self, id: &str, samples: usize, mut f: F) -> f64 {
        assert!(samples > 0, "need at least one sample");
        black_box(f());
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64());
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / samples as f64;
        println!(
            "{}/{id:<28} {samples:>3} samples  min {}  mean {}  max {}",
            self.name,
            format_secs(min),
            format_secs(mean),
            format_secs(max),
        );
        mean
    }
}

/// One serial-vs-parallel kernel measurement destined for
/// `BENCH_kernels.json`.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name (`matmul`, `eigh`, `project_psd`).
    pub kernel: String,
    /// Problem size (matrix dimension).
    pub n: usize,
    /// Mean seconds per call on a 1-worker pool.
    pub serial_secs: f64,
    /// Mean seconds per call on the parallel pool.
    pub parallel_secs: f64,
    /// Whether serial and parallel outputs were bitwise identical.
    pub bitwise_match: bool,
}

impl KernelRecord {
    /// Serial-over-parallel wall-time ratio (>1 means the pool wins).
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            0.0
        }
    }
}

/// Writes the tracked kernel baseline as a JSON document.
///
/// Hand-rolled serialization (the workspace is offline and std-only),
/// matching the telemetry crate's JSONL conventions.
///
/// # Errors
///
/// Propagates I/O failures from writing `path`.
pub fn write_kernel_report(
    path: &std::path::Path,
    parallel_workers: usize,
    records: &[KernelRecord],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"gfp-kernel-bench-v1\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    ));
    out.push_str(&format!("  \"parallel_workers\": {parallel_workers},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"serial_secs\": {:.9}, \
             \"parallel_secs\": {:.9}, \"speedup\": {:.4}, \"bitwise_match\": {}}}{}\n",
            r.kernel,
            r.n,
            r.serial_secs,
            r.parallel_secs,
            r.speedup(),
            r.bitwise_match,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Human-readable seconds with an adaptive unit.
fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>8.3} s")
    } else if s >= 1e-3 {
        format!("{:>8.3} ms", s * 1e3)
    } else {
        format!("{:>8.3} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_mean() {
        let g = Group::new("test");
        let mean = g.bench("spin", 3, || (0..1000u64).sum::<u64>());
        assert!(mean >= 0.0);
    }

    #[test]
    fn kernel_report_is_valid_shape() {
        let rec = KernelRecord {
            kernel: "matmul".into(),
            n: 50,
            serial_secs: 2.0e-3,
            parallel_secs: 1.0e-3,
            bitwise_match: true,
        };
        assert!((rec.speedup() - 2.0).abs() < 1e-12);
        let dir = std::env::temp_dir().join("gfp_kernel_report_test.json");
        write_kernel_report(&dir, 4, &[rec]).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"schema\": \"gfp-kernel-bench-v1\""));
        assert!(text.contains("\"speedup\": 2.0000"));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn formats_pick_sensible_units() {
        assert!(format_secs(2.5).ends_with(" s"));
        assert!(format_secs(0.002).ends_with(" ms"));
        assert!(format_secs(2e-6).ends_with(" µs"));
    }
}
