//! Experiment harness reproducing every table and figure of the paper.
//!
//! Each table/figure has a dedicated binary (see `src/bin/`):
//!
//! | Paper artifact | Binary | What it regenerates |
//! |---|---|---|
//! | Table I | `table1` | method-property evidence (convexity, trivial optima, area control) |
//! | Table II | `table2` | HPWL: ours vs AR vs PP at outlines 1:1 and 1:2 |
//! | Table III | `table3` | HPWL: ours vs Parquet-style SA vs analytical |
//! | Fig. 4 | `fig4` | α–HPWL curves per enhancement stack, with legalization failures |
//! | Fig. 5(a) | `fig5a` | convergence traces per α and benchmark size |
//! | Fig. 5(b) | `fig5b` | per-iteration runtime vs n with a log-log slope fit |
//! | extras | `ablation` | backend / warm-start / direction-carrying ablations |
//!
//! Every binary accepts `--quick` (small benchmarks, small budgets)
//! and writes CSV next to its stdout table under `results/`.

pub mod budget;
pub mod microbench;
pub mod runner;
pub mod table;
pub mod trace;

pub use budget::Budget;
pub use runner::{delta_percent, MethodResult, Pipeline};
pub use table::Table;
