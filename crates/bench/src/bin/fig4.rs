//! Reproduces **Fig. 4**: α–HPWL curves for the four enhancement
//! stacks (basic / +non-square / +Manhattan / +hyper-edge), with
//! legalization failures shown as the paper's missing points.
//!
//! Usage: `cargo run --release -p gfp-bench --bin fig4 [-- --quick|--full] [-- --trace]`
//!
//! With `--trace` (or `GFP_TRACE=file.jsonl`) the run prints an
//! end-of-run telemetry summary; `GFP_TRACE` additionally streams
//! per-iteration solver events to the named JSONL file.

use gfp_bench::table::fmt_hpwl;
use gfp_bench::{Budget, Pipeline, Table};
use gfp_core::enhance::Enhancements;
use gfp_netlist::suite;

/// The four technique stacks of Fig. 4 (color names from the paper).
fn stacks() -> Vec<(&'static str, Enhancements, f64)> {
    vec![
        ("basic(orange)", Enhancements::none(), 1.0),
        ("nonsq(blue)", Enhancements::none(), 3.0),
        (
            "nonsq+man(green)",
            Enhancements {
                manhattan: true,
                hyperedge: false,
            },
            3.0,
        ),
        ("nonsq+man+hyp(yellow)", Enhancements::full(), 3.0),
    ]
}

fn main() {
    let tracing = gfp_bench::trace::init_from_args();
    let budget = Budget::from_args();
    let benches = match budget {
        Budget::Quick => vec!["n10"],
        Budget::Standard => vec!["n10", "n30"],
        Budget::Full => vec!["n10", "n30", "n50", "n100"],
    };
    // α sweep in normalized-objective units (the paper sweeps 0.5 …
    // 1024 in its own scale; the shape of the curve is the target).
    let alphas = match budget {
        Budget::Quick => vec![64.0, 1024.0, 16384.0],
        _ => vec![16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0],
    };
    println!("Fig. 4 reproduction (budget {budget:?})");
    println!("rows: benchmark x stack; columns: pinned α; 'fail' = legalization failure\n");

    let mut header: Vec<String> = vec!["bench".into(), "stack".into()];
    header.extend(alphas.iter().map(|a| format!("a={a}")));
    let mut table = Table::new(header);

    for name in &benches {
        let bench = suite::by_name(name);
        let pipeline = Pipeline::new(&bench, 1.0, budget);
        for (stack_name, enh, aspect) in stacks() {
            let mut row: Vec<String> = vec![name.to_string(), stack_name.to_string()];
            for &alpha in &alphas {
                let r = pipeline.run_sdp_variant(enh, aspect, Some(alpha));
                row.push(fmt_hpwl(r.hpwl));
                eprintln!(
                    "[{name} {stack_name} α={alpha}] {} ({:.1}s)",
                    fmt_hpwl(r.hpwl),
                    r.global_seconds + r.legal_seconds
                );
            }
            table.add_row(row);
        }
    }
    println!("{}", table.render());
    println!("expected shape: enhancement stacks improve HPWL (except the tiny n10 case for");
    println!("non-square); very small α often fails legalization (rank not reached), very");
    println!("large α converges but with worse wirelength.");
    match table.write_csv("fig4") {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    gfp_bench::trace::finish(tracing);
}
