//! Reproduces **Fig. 5(a)**: convergence of the convex iteration —
//! objective value per iteration for different α and benchmark sizes.
//! Larger α converges faster (but can end worse); larger benchmarks
//! need larger α to converge at all.
//!
//! Usage: `cargo run --release -p gfp-bench --bin fig5a [-- --quick|--full]`

use gfp_bench::{Budget, Pipeline, Table};
use gfp_core::{FloorplannerSettings, SdpFloorplanner};
use gfp_netlist::suite;

fn main() {
    let budget = Budget::from_args();
    let benches = match budget {
        Budget::Quick => vec!["n10"],
        Budget::Standard => vec!["n10", "n30"],
        Budget::Full => vec!["n10", "n30", "n50", "n100"],
    };
    let alphas = match budget {
        Budget::Quick => vec![256.0, 16384.0],
        _ => vec![64.0, 1024.0, 16384.0],
    };
    println!("Fig. 5(a) reproduction (budget {budget:?})");
    println!("objective = quadratic wirelength of the iterate; gap = <W, Z> rank gap\n");

    let mut table = Table::new(vec![
        "bench", "alpha", "iteration", "objective", "rank_gap",
    ]);
    for name in &benches {
        let bench = suite::by_name(name);
        let pipeline = Pipeline::new(&bench, 1.0, budget);
        for &alpha in &alphas {
            let mut settings = pipeline.sdp_settings();
            settings.alpha0 = alpha;
            settings.max_alpha_rounds = 1; // pinned α: pure convergence study
            settings.max_iter = match budget {
                Budget::Quick => 8,
                _ => 15,
            };
            settings.eps_conv = 0.0; // never stop early: record the full trace
            let result = match SdpFloorplanner::new(settings).solve(&pipeline.problem) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("[{name} α={alpha}] failed: {e}");
                    continue;
                }
            };
            for t in &result.trace {
                table.add_row(vec![
                    name.to_string(),
                    format!("{alpha}"),
                    t.iteration.to_string(),
                    format!("{:.1}", t.wirelength),
                    format!("{:.4e}", t.rank_gap),
                ]);
            }
            let first = result.trace.first().map(|t| t.rank_gap).unwrap_or(0.0);
            let last = result.trace.last().map(|t| t.rank_gap).unwrap_or(0.0);
            eprintln!(
                "[{name} α={alpha}] {} iterations, rank gap {first:.3e} -> {last:.3e}, converged {}",
                result.iterations, result.converged
            );
        }
    }
    println!("{}", table.render());
    println!("expected shape: the rank gap decreases monotonically per α; larger α drives");
    println!("it down faster; small benchmarks converge within ~10 iterations while larger");
    println!("ones keep improving (the paper's n50/n100 curves are still decreasing).");
    match table.write_csv("fig5a") {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    let _ = FloorplannerSettings::default(); // keep the type in scope for docs
}
