//! Tracked kernel benchmark baseline: serial vs parallel wall time for
//! the three hot numeric kernels (`matmul`, `eigh`, `project_psd`) at
//! n ∈ {50, 100, 200}, written to `BENCH_kernels.json` at the repo
//! root so regressions show up in review diffs.
//!
//! Serial and parallel columns are measured in one process by swapping
//! the thread-local `gfp-parallel` pool (1 worker vs `GFP_THREADS`,
//! default 4), and every pair is checked for bitwise-identical output
//! — the speedup column is only meaningful because the answers match
//! exactly.
//!
//! Flags:
//! * `--smoke` — tiny sizes and sample counts, output to
//!   `target/BENCH_kernels.smoke.json` (CI gate; does not disturb the
//!   tracked baseline).
//! * `--out <path>` — override the output path.

use std::path::PathBuf;

use gfp_bench::microbench::{write_kernel_report, Group, KernelRecord};
use gfp_conic::Cone;
use gfp_linalg::{eigh, Mat};
use gfp_parallel::{with_pool, ThreadPool};
use gfp_rand::Rng;

fn random_mat(rng: &mut Rng, rows: usize, cols: usize) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = 2.0 * rng.gen_f64() - 1.0;
        }
    }
    m
}

fn random_sym(rng: &mut Rng, n: usize) -> Mat {
    let mut m = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = 2.0 * rng.gen_f64() - 1.0;
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Benchmarks `f` under both pools and returns the record plus the
/// bitwise comparison of the two outputs.
fn measure<F>(
    group: &Group,
    kernel: &str,
    n: usize,
    samples: usize,
    serial: &ThreadPool,
    parallel: &ThreadPool,
    f: F,
) -> KernelRecord
where
    F: Fn() -> Vec<f64>,
{
    let out_serial = with_pool(serial, &f);
    let out_parallel = with_pool(parallel, &f);
    let bitwise_match = bits_eq(&out_serial, &out_parallel);
    let serial_secs = with_pool(serial, || group.bench(&format!("{kernel}/{n}/serial"), samples, &f));
    let parallel_secs =
        with_pool(parallel, || group.bench(&format!("{kernel}/{n}/parallel"), samples, &f));
    KernelRecord {
        kernel: kernel.to_string(),
        n,
        serial_secs,
        parallel_secs,
        bitwise_match,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            if smoke {
                PathBuf::from("target/BENCH_kernels.smoke.json")
            } else {
                PathBuf::from("BENCH_kernels.json")
            }
        });
    let workers: usize = std::env::var("GFP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let sizes: &[usize] = if smoke { &[50] } else { &[50, 100, 200] };
    let samples = if smoke { 2 } else { 5 };

    let serial = ThreadPool::new(1);
    let parallel = ThreadPool::new(workers);
    let group = Group::new("kernels");
    let mut rng = Rng::seed_from_u64(0xbe9c_0001);
    let mut records = Vec::new();

    for &n in sizes {
        let a = random_mat(&mut rng, n, n);
        let b = random_mat(&mut rng, n, n);
        records.push(measure(&group, "matmul", n, samples, &serial, &parallel, || {
            a.matmul(&b).as_slice().to_vec()
        }));

        let sym = random_sym(&mut rng, n);
        records.push(measure(&group, "eigh", n, samples, &serial, &parallel, || {
            let e = eigh(&sym).expect("eigh");
            let mut flat = e.values.clone();
            flat.extend_from_slice(e.vectors.as_slice());
            flat
        }));

        let v0 = gfp_linalg::svec::svec(&sym);
        let cone = Cone::Psd(n);
        records.push(measure(&group, "project_psd", n, samples, &serial, &parallel, || {
            let mut v = v0.clone();
            cone.project(&mut v);
            v
        }));
    }

    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    write_kernel_report(&out_path, workers, &records).expect("write kernel report");

    let all_match = records.iter().all(|r| r.bitwise_match);
    println!("\nwrote {} ({} records)", out_path.display(), records.len());
    for r in &records {
        println!(
            "  {:<12} n={:<4} speedup {:>6.2}x  bitwise_match={}",
            r.kernel,
            r.n,
            r.speedup(),
            r.bitwise_match
        );
    }
    assert!(all_match, "serial and parallel outputs diverged");
}
