//! Tracked kernel benchmark baseline: serial vs parallel wall time for
//! the hot numeric kernels (`matmul`, `eigh`, `project_psd`,
//! `lanczos`, `subproblem2`) at n ∈ {50, 100, 200}, plus the spectral
//! fast-path, checkpoint, telemetry-overhead and end-to-end sections,
//! written to `BENCH_kernels.json` at the repo root so regressions
//! show up in review diffs.
//!
//! Serial and parallel columns are measured in one process by swapping
//! the thread-local `gfp-parallel` pool (1 worker vs `GFP_THREADS`,
//! default 4, clamped to the host CPU count), and every pair is
//! checked for bitwise-identical output — the speedup column is only
//! meaningful because the answers match exactly. On hosts with fewer
//! CPUs than requested workers the adaptive cutover keeps the kernels
//! on their serial paths, so the parallel column records ~1.0× instead
//! of oversubscription losses; both the requested and the effective
//! width are recorded.
//!
//! The `fastpath` section times dense vs deflated sub-problem 2 and
//! reports the telemetry hit/fallback counts; the `e2e` section runs
//! the supervised n200 solve in three configurations (pre-PR baseline
//! with everything off, fast-path-off/reuse-on, all-on) and a
//! 1/2/8-worker bitwise sweep of the all-on configuration.
//!
//! Flags:
//! * `--smoke` — tiny sizes and sample counts, no e2e section, output
//!   to `target/BENCH_kernels.smoke.json` (CI gate; does not disturb
//!   the tracked baseline).
//! * `--out <path>` — override the output path.

use std::path::PathBuf;

use gfp_bench::microbench::{
    write_kernel_report, CheckpointReport, E2eReport, FastpathReport, Group, KernelRecord,
    TelemetryReport,
};
use gfp_conic::{AdmmSettings, Cone};
use gfp_core::iterate::{Backend, FloorplannerSettings};
use gfp_core::lifted::Lift;
use gfp_core::subproblems::solve_subproblem2;
use gfp_core::{GlobalFloorplanProblem, ProblemOptions, SolveSupervisor};
use gfp_linalg::{eigh, fastpath, lanczos_extreme, Extreme, LanczosOptions, Mat};
use gfp_netlist::suite;
use gfp_parallel::{with_pool, ThreadPool};
use gfp_rand::Rng;
use gfp_telemetry as telemetry;

fn random_mat(rng: &mut Rng, rows: usize, cols: usize) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = 2.0 * rng.gen_f64() - 1.0;
        }
    }
    m
}

fn random_sym(rng: &mut Rng, n: usize) -> Mat {
    let mut m = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = 2.0 * rng.gen_f64() - 1.0;
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn counter(name: &str) -> u64 {
    telemetry::counters_snapshot()
        .into_iter()
        .find(|(k, _)| *k == name)
        .map_or(0, |(_, v)| v)
}

/// Benchmarks `f` under both pools and returns the record plus the
/// bitwise comparison of the two outputs.
fn measure<F>(
    group: &Group,
    kernel: &str,
    n: usize,
    samples: usize,
    serial: &ThreadPool,
    parallel: &ThreadPool,
    f: F,
) -> KernelRecord
where
    F: Fn() -> Vec<f64>,
{
    let out_serial = with_pool(serial, &f);
    let out_parallel = with_pool(parallel, &f);
    let bitwise_match = bits_eq(&out_serial, &out_parallel);
    let serial_secs = with_pool(serial, || group.bench(&format!("{kernel}/{n}/serial"), samples, &f));
    let parallel_secs =
        with_pool(parallel, || group.bench(&format!("{kernel}/{n}/parallel"), samples, &f));
    KernelRecord {
        kernel: kernel.to_string(),
        n,
        serial_secs,
        parallel_secs,
        bitwise_match,
    }
}

/// A lifted `Z` whose spectrum looks like a converging iterate: two
/// dominant Gram directions over a small slack floor — the shape the
/// deflated fast path is built for.
fn lifted_z(n: usize, seed: u64) -> Mat {
    let lift = Lift::new(n);
    let mut rng = Rng::seed_from_u64(seed);
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (20.0 * rng.gen_f64(), 20.0 * rng.gen_f64()))
        .collect();
    let z = lift.embed_positions(&pos, 0.5);
    lift.z_matrix(&z)
}

/// Dense vs deflated sub-problem 2 on the largest benched size, plus
/// the run's accumulated fast-path telemetry (captured by the caller).
fn fastpath_section(group: &Group, n: usize, samples: usize) -> FastpathReport {
    let zm = lifted_z(n, 0xbe9c_0002);
    let prev = fastpath::set_enabled(false);
    let (w_dense, gap_dense) = solve_subproblem2(&zm, n).expect("dense subproblem2");
    let dense_secs = group.bench(&format!("subproblem2/{n}/dense"), samples, || {
        solve_subproblem2(&zm, n).expect("dense subproblem2")
    });
    fastpath::set_enabled(true);
    let (w_fast, gap_fast) = solve_subproblem2(&zm, n).expect("fast subproblem2");
    let fast_secs = group.bench(&format!("subproblem2/{n}/fastpath"), samples, || {
        solve_subproblem2(&zm, n).expect("fast subproblem2")
    });
    fastpath::set_enabled(prev);
    FastpathReport {
        // Counter deltas are filled in by main() around the whole run.
        lanczos_calls: 0,
        eigh_partial_hits: 0,
        eigh_partial_fallbacks: 0,
        subproblem2_dense_secs: dense_secs,
        subproblem2_fast_secs: fast_secs,
        w_max_diff: (&w_fast - &w_dense).norm_max(),
        gap_rel_diff: (gap_fast - gap_dense).abs() / (1.0 + gap_dense.abs()),
    }
}

/// Budgeted supervised-solve settings for the e2e section: large-α
/// profile from the paper's n ≥ 100 setup, trimmed to bench-friendly
/// budgets. Quality is not the point here — identical budgets across
/// configurations are.
fn e2e_settings(fast: bool) -> FloorplannerSettings {
    let mut s = FloorplannerSettings::fast();
    s.alpha0 = 1024.0;
    s.max_alpha_rounds = 2;
    s.max_iter = 2;
    s.backend = Backend::Admm(AdmmSettings {
        eps: 1e-4,
        max_iter: 1200,
        ..AdmmSettings::default()
    });
    s.admm_reuse = fast;
    s
}

fn solve_positions(
    problem: &GlobalFloorplanProblem,
    settings: &FloorplannerSettings,
) -> (Vec<(f64, f64)>, f64) {
    let t0 = std::time::Instant::now();
    let result = SolveSupervisor::new(settings.clone()).solve(problem);
    (result.floorplan.positions, t0.elapsed().as_secs_f64())
}

fn e2e_section() -> E2eReport {
    let bench = suite::gsrc_n200();
    let problem =
        GlobalFloorplanProblem::from_netlist(&bench.netlist, &ProblemOptions::default())
            .expect("n200 problem");

    // Pre-PR baseline: spectral fast path off, ADMM reuse off.
    let prev = fastpath::set_enabled(false);
    let (_, baseline_secs) = solve_positions(&problem, &e2e_settings(false));
    println!("e2e/gsrc_n200/baseline      {baseline_secs:>8.2} s");

    // Fast path off, reuse on: isolates the spectral approximation.
    let (pos_no_fp, _) = solve_positions(&problem, &e2e_settings(true));

    // All on, timed.
    fastpath::set_enabled(true);
    let warm0 = counter("admm.warm_reuse");
    let (pos_fast, fast_secs) = solve_positions(&problem, &e2e_settings(true));
    let admm_warm_reuse = counter("admm.warm_reuse") - warm0;
    println!("e2e/gsrc_n200/fast          {fast_secs:>8.2} s");

    // Worker sweep: the all-on configuration must be bitwise identical
    // at 1, 2 and 8 workers. The host clamp is lifted so the parallel
    // paths actually execute even on small hosts.
    let unclamp = gfp_parallel::set_host_clamp(false);
    let mut sweep: Vec<Vec<(f64, f64)>> = Vec::new();
    for workers in [1usize, 2, 8] {
        let pool = ThreadPool::new(workers);
        let (pos, _) = with_pool(&pool, || solve_positions(&problem, &e2e_settings(true)));
        sweep.push(pos);
    }
    gfp_parallel::set_host_clamp(unclamp);
    fastpath::set_enabled(prev);
    let bitwise_match_threads = sweep[1..].iter().all(|pos| {
        pos.len() == sweep[0].len()
            && pos
                .iter()
                .zip(sweep[0].iter())
                .all(|(a, b)| a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits())
    });

    E2eReport {
        instance: "gsrc_n200".into(),
        baseline_secs,
        fast_secs,
        hpwl_fast: gfp_netlist::hpwl::hpwl(&bench.netlist, &pos_fast),
        hpwl_no_fastpath: gfp_netlist::hpwl::hpwl(&bench.netlist, &pos_no_fp),
        admm_warm_reuse,
        bitwise_match_threads,
    }
}

/// Durable-checkpoint overhead: encode + atomic durable write of a
/// real outer state (one supervised round on `instance`), against the
/// wall time of that round itself. This is the per-round price of
/// crash safety — the slow-tier test `checkpoint_overhead.rs` asserts
/// it stays under 5% end to end.
fn checkpoint_section(group: &Group, instance: &str, samples: usize) -> CheckpointReport {
    use gfp_core::checkpoint::{encode_state, STATE_FORMAT_VERSION};
    use gfp_store::SnapshotStore;

    let bench = suite::by_name(instance);
    let problem =
        GlobalFloorplanProblem::from_netlist(&bench.netlist, &ProblemOptions::default())
            .expect("suite problem");
    let mut settings = FloorplannerSettings::fast();
    settings.max_iter = 2;
    settings.max_alpha_rounds = 1;
    settings.backend = Backend::Admm(AdmmSettings {
        eps: 1e-4,
        max_iter: 1200,
        ..AdmmSettings::default()
    });
    let t0 = std::time::Instant::now();
    let result = SolveSupervisor::new(settings).solve(&problem);
    let round_secs = t0.elapsed().as_secs_f64();
    let state = result.checkpoint;

    let payload = encode_state(&state);
    let state_bytes = payload.len();
    let encode_secs = group.bench(&format!("checkpoint/{instance}/encode"), samples, || {
        encode_state(&state).len()
    });

    let dir = std::env::temp_dir().join(format!("gfp-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = SnapshotStore::open(&dir, 2).expect("open bench checkpoint store");
    let write_secs = group.bench(&format!("checkpoint/{instance}/write"), samples, || {
        store
            .write(STATE_FORMAT_VERSION, &encode_state(&state))
            .expect("durable snapshot write")
    });
    let _ = std::fs::remove_dir_all(&dir);

    CheckpointReport {
        instance: instance.to_string(),
        state_bytes,
        encode_secs,
        write_secs,
        round_secs,
    }
}

/// Full-observability overhead: structured-event throughput through a
/// real JSONL file sink (the `GFP_TRACE` configuration), plus the
/// encode + write cost of the `SolveReport` a `GFP_REPORT` run pays
/// once at exit.
fn telemetry_section(group: &Group, samples: usize, smoke: bool) -> TelemetryReport {
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("gfp-bench-telemetry-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);

    // Event throughput: batches of two-field events into a buffered
    // JSONL file sink. Mean seconds per batch → events per second.
    let batch = if smoke { 2_000u64 } else { 20_000u64 };
    let sink =
        telemetry::JsonlSink::create(&dir.join("events.jsonl")).expect("open bench trace sink");
    telemetry::install_sink(Arc::new(sink));
    let batch_secs = group.bench("telemetry/events/jsonl", samples, || {
        for i in 0..batch {
            telemetry::event(
                "bench.event",
                &[("i", telemetry::Value::U64(i)), ("phase", telemetry::Value::Str("bench"))],
            );
        }
        batch
    });
    telemetry::install_sink(Arc::new(telemetry::NullSink));
    let events_per_sec = if batch_secs > 0.0 { batch as f64 / batch_secs } else { 0.0 };

    // Report cost on a real (budgeted) supervised n50 solve: encode to
    // JSON, then the full file write.
    let bench = suite::gsrc_n50();
    let problem =
        GlobalFloorplanProblem::from_netlist(&bench.netlist, &ProblemOptions::default())
            .expect("n50 problem");
    let mut settings = FloorplannerSettings::fast();
    settings.max_iter = 2;
    settings.max_alpha_rounds = 2;
    let result = SolveSupervisor::new(settings).solve(&problem);
    let report = result.solve_report();
    let report_bytes = report.to_json().len();
    let report_encode_secs =
        group.bench("telemetry/report/encode", samples, || report.to_json().len());
    let report_path = dir.join("solve-report.json");
    let report_write_secs = group.bench("telemetry/report/write", samples, || {
        report.write_to(&report_path).expect("write bench solve report")
    });
    let _ = std::fs::remove_dir_all(&dir);

    TelemetryReport {
        events_per_sec,
        report_rounds: report.rounds.len(),
        report_bytes,
        report_encode_secs,
        report_write_secs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            if smoke {
                PathBuf::from("target/BENCH_kernels.smoke.json")
            } else {
                PathBuf::from("BENCH_kernels.json")
            }
        });
    let requested: usize = std::env::var("GFP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    // Oversubscribing a small host turns "parallel" into pure context-
    // switch overhead; the recorded effective width is what the
    // speedup columns are measured against.
    let effective = requested.min(gfp_parallel::host_cpus());
    let sizes: &[usize] = if smoke { &[50] } else { &[50, 100, 200] };
    let samples = if smoke { 2 } else { 5 };

    // Counters (fast-path hit rates) only tick while telemetry is on;
    // no sink is installed, so nothing is written anywhere.
    telemetry::set_enabled(true);
    let lanczos0 = counter("kernel.lanczos.calls");
    let hits0 = counter("kernel.eigh_partial.hit");
    let fb0 = counter("kernel.eigh_partial.fallback");

    let serial = ThreadPool::new(1);
    let parallel = ThreadPool::new(effective);
    let group = Group::new("kernels");
    let mut rng = Rng::seed_from_u64(0xbe9c_0001);
    let mut records = Vec::new();

    for &n in sizes {
        let a = random_mat(&mut rng, n, n);
        let b = random_mat(&mut rng, n, n);
        records.push(measure(&group, "matmul", n, samples, &serial, &parallel, || {
            a.matmul(&b).as_slice().to_vec()
        }));

        let sym = random_sym(&mut rng, n);
        records.push(measure(&group, "eigh", n, samples, &serial, &parallel, || {
            let e = eigh(&sym).expect("eigh");
            let mut flat = e.values.clone();
            flat.extend_from_slice(e.vectors.as_slice());
            flat
        }));

        records.push(measure(&group, "lanczos", n, samples, &serial, &parallel, || {
            let pe = lanczos_extreme(&sym, 2, Extreme::Largest, &LanczosOptions::default())
                .expect("lanczos");
            let mut flat = pe.values.clone();
            flat.extend_from_slice(pe.vectors.as_slice());
            flat
        }));

        let v0 = gfp_linalg::svec::svec(&sym);
        let cone = Cone::Psd(n);
        records.push(measure(&group, "project_psd", n, samples, &serial, &parallel, || {
            let mut v = v0.clone();
            cone.project(&mut v);
            v
        }));

        // Sub-problem 2 under both pools (fast path at its default):
        // bitwise determinism across worker counts is part of the
        // fast path's contract too.
        let zm = lifted_z(n, 0xbe9c_0003 ^ n as u64);
        records.push(measure(&group, "subproblem2", n, samples, &serial, &parallel, || {
            let (w, gap) = solve_subproblem2(&zm, n).expect("subproblem2");
            let mut flat = w.as_slice().to_vec();
            flat.push(gap);
            flat
        }));
    }

    let mut fastpath_report = fastpath_section(&group, *sizes.last().unwrap(), samples);
    // Checkpoint overhead on the paper-scale instance; the smoke tier
    // uses n50 to stay fast while still exercising the fsync path.
    let ckpt_report = checkpoint_section(&group, if smoke { "n50" } else { "n200" }, samples);
    let telemetry_report = telemetry_section(&group, samples, smoke);
    let e2e = if smoke { None } else { Some(e2e_section()) };

    fastpath_report.lanczos_calls = counter("kernel.lanczos.calls") - lanczos0;
    fastpath_report.eigh_partial_hits = counter("kernel.eigh_partial.hit") - hits0;
    fastpath_report.eigh_partial_fallbacks = counter("kernel.eigh_partial.fallback") - fb0;

    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    write_kernel_report(
        &out_path,
        requested,
        effective,
        &records,
        Some(&fastpath_report),
        Some(&ckpt_report),
        Some(&telemetry_report),
        e2e.as_ref(),
    )
    .expect("write kernel report");

    let all_match = records.iter().all(|r| r.bitwise_match);
    println!("\nwrote {} ({} records)", out_path.display(), records.len());
    println!("workers: requested {requested}, effective {effective}");
    for r in &records {
        println!(
            "  {:<12} n={:<4} speedup {:>6.2}x  bitwise_match={}",
            r.kernel,
            r.n,
            r.speedup(),
            r.bitwise_match
        );
    }
    println!(
        "  fastpath: {} hits / {} fallbacks (hit rate {:.0}%), subproblem2 {:.2}x",
        fastpath_report.eigh_partial_hits,
        fastpath_report.eigh_partial_fallbacks,
        100.0 * fastpath_report.hit_rate(),
        fastpath_report.speedup(),
    );
    println!(
        "  checkpoint {}: {} KiB state, encode {:.2} ms, durable write {:.2} ms \
         ({:.2}% of a round)",
        ckpt_report.instance,
        ckpt_report.state_bytes / 1024,
        ckpt_report.encode_secs * 1e3,
        ckpt_report.write_secs * 1e3,
        100.0 * ckpt_report.overhead_frac(),
    );
    println!(
        "  telemetry: {:.0}k events/s (jsonl sink), report {} rounds / {} KiB, \
         encode {:.2} ms, write {:.2} ms",
        telemetry_report.events_per_sec / 1e3,
        telemetry_report.report_rounds,
        telemetry_report.report_bytes / 1024,
        telemetry_report.report_encode_secs * 1e3,
        telemetry_report.report_write_secs * 1e3,
    );
    let mut ok = all_match;
    if let Some(e) = &e2e {
        println!(
            "  e2e {}: baseline {:.1}s, fast {:.1}s ({:.2}x), hpwl rel diff {:.2e}, \
             warm reuses {}, bitwise across workers: {}",
            e.instance,
            e.baseline_secs,
            e.fast_secs,
            e.speedup(),
            e.hpwl_rel_diff(),
            e.admm_warm_reuse,
            e.bitwise_match_threads,
        );
        ok &= e.bitwise_match_threads;
    }
    assert!(ok, "serial and parallel outputs diverged");
}
