//! Flat vs hierarchical SDP floorplanning — quantifies the paper's
//! future-work extension ("design a hierarchical framework to enhance
//! the scalability").
//!
//! Usage: `cargo run --release -p gfp-bench --bin hierarchy [-- --quick|--full]`

use std::time::Instant;

use gfp_bench::table::fmt_hpwl;
use gfp_bench::{Budget, Pipeline, Table};
use gfp_core::hierarchical::{HierarchicalFloorplanner, HierarchicalSettings};
use gfp_core::SdpFloorplanner;
use gfp_legalize::{legalize, LegalizeSettings};
use gfp_netlist::suite;

fn main() {
    let budget = Budget::from_args();
    let benches = match budget {
        Budget::Quick => vec!["n30"],
        Budget::Standard => vec!["n50", "n100"],
        Budget::Full => vec!["n50", "n100", "n200", "n300"],
    };
    println!("Hierarchical extension: flat vs two-level (budget {budget:?})\n");
    let mut table = Table::new(vec![
        "bench", "flow", "clusters", "hpwl", "seconds",
    ]);
    for name in &benches {
        let bench = suite::by_name(name);
        let pipeline = Pipeline::new(&bench, 1.0, budget);
        // Flat.
        let t0 = Instant::now();
        let flat = SdpFloorplanner::new(pipeline.sdp_settings()).solve(&pipeline.problem);
        let flat_secs = t0.elapsed().as_secs_f64();
        let flat_hpwl = flat.ok().and_then(|fp| {
            legalize(
                &pipeline.netlist,
                &pipeline.problem,
                &pipeline.outline,
                &fp.positions,
                &LegalizeSettings::default(),
            )
            .ok()
            .map(|l| l.hpwl)
        });
        table.add_row(vec![
            name.to_string(),
            "flat".into(),
            "-".into(),
            fmt_hpwl(flat_hpwl),
            format!("{flat_secs:.1}"),
        ]);
        eprintln!("[{name} flat] {} in {flat_secs:.1}s", fmt_hpwl(flat_hpwl));
        // Hierarchical.
        let mut settings = HierarchicalSettings::default();
        settings.max_clusters = (pipeline.problem.n / 7).clamp(8, 25);
        settings.top = pipeline.budget.sdp_settings(settings.max_clusters);
        settings.leaf = pipeline.budget.sdp_settings(10);
        let clusters = settings.max_clusters;
        let t0 = Instant::now();
        let hier = HierarchicalFloorplanner::new(settings).solve(&pipeline.problem);
        let hier_secs = t0.elapsed().as_secs_f64();
        let hier_hpwl = hier.ok().and_then(|fp| {
            legalize(
                &pipeline.netlist,
                &pipeline.problem,
                &pipeline.outline,
                &fp.positions,
                &LegalizeSettings::default(),
            )
            .ok()
            .map(|l| l.hpwl)
        });
        table.add_row(vec![
            name.to_string(),
            "hierarchical".into(),
            clusters.to_string(),
            fmt_hpwl(hier_hpwl),
            format!("{hier_secs:.1}"),
        ]);
        eprintln!("[{name} hier] {} in {hier_secs:.1}s", fmt_hpwl(hier_hpwl));
    }
    println!("{}", table.render());
    println!("expected shape: hierarchical trades a few percent HPWL for a large runtime");
    println!("reduction on instances beyond the flat SDP's comfortable range.");
    match table.write_csv("hierarchy") {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
