//! Ablations over the design choices DESIGN.md calls out:
//!
//! * sub-problem-1 backend: ADMM vs dense barrier IPM,
//! * warm starting across iterations on/off,
//! * carrying the direction matrix `W` across α rounds vs resetting it
//!   (Algorithm 1 verbatim),
//! * enhancement stacks (already swept in `fig4`; summarized here).
//!
//! Usage: `cargo run --release -p gfp-bench --bin ablation [-- --quick]`

use std::time::Instant;

use gfp_bench::table::fmt_hpwl;
use gfp_bench::{Budget, Pipeline, Table};
use gfp_conic::ipm::BarrierSettings;
use gfp_core::{Backend, GlobalFloorplanProblem, ProblemOptions, SdpFloorplanner};
use gfp_netlist::suite;

fn main() {
    let budget = Budget::from_args();
    let bench = suite::gsrc_n10();
    let pipeline = Pipeline::new(&bench, 1.0, budget);
    println!("Design-choice ablations on {} (budget {budget:?})\n", bench.name);

    let mut table = Table::new(vec![
        "variant", "hpwl", "rank_gap", "iters", "seconds", "converged",
    ]);

    let variants: Vec<(&str, Box<dyn Fn() -> gfp_core::FloorplannerSettings>)> = vec![
        ("baseline (admm, warm, carry-W)", Box::new({
            let p = pipeline.clone();
            move || p.sdp_settings()
        })),
        ("no warm start", Box::new({
            let p = pipeline.clone();
            move || {
                let mut s = p.sdp_settings();
                s.warm_start = false;
                s
            }
        })),
        ("reset W per alpha (Alg.1 verbatim)", Box::new({
            let p = pipeline.clone();
            move || {
                let mut s = p.sdp_settings();
                s.reset_direction = true;
                s
            }
        })),
        ("ipm backend", Box::new({
            let p = pipeline.clone();
            move || {
                let mut s = p.sdp_settings();
                s.backend = Backend::Ipm(BarrierSettings {
                    eps: 1e-7,
                    ..BarrierSettings::default()
                });
                s
            }
        })),
    ];

    // The barrier IPM needs a strict interior, which the outline box
    // bounds deny to the circular phase-0 start; its ablation row runs
    // on the unconstrained problem (legalized into the outline as
    // usual).
    let unconstrained = GlobalFloorplanProblem::from_netlist(
        &pipeline.netlist,
        &ProblemOptions {
            outline: None,
            aspect_limit: 3.0,
            ..ProblemOptions::default()
        },
    )
    .expect("problem");

    for (name, make_settings) in variants {
        let problem = if name.starts_with("ipm") {
            &unconstrained
        } else {
            &pipeline.problem
        };
        let t0 = Instant::now();
        match SdpFloorplanner::new(make_settings()).solve(problem) {
            Ok(fp) => {
                let secs = t0.elapsed().as_secs_f64();
                let legal = gfp_legalize::legalize(
                    &pipeline.netlist,
                    &pipeline.problem,
                    &pipeline.outline,
                    &fp.positions,
                    &gfp_legalize::LegalizeSettings::default(),
                );
                let hpwl = legal.ok().map(|l| l.hpwl);
                table.add_row(vec![
                    name.to_string(),
                    fmt_hpwl(hpwl),
                    format!("{:.2e}", fp.rank_gap),
                    fp.iterations.to_string(),
                    format!("{secs:.1}"),
                    fp.converged.to_string(),
                ]);
                eprintln!("[{name}] done in {secs:.1}s");
            }
            Err(e) => {
                table.add_row(vec![
                    name.to_string(),
                    "error".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    format!("{:.1}", t0.elapsed().as_secs_f64()),
                    "-".to_string(),
                ]);
                eprintln!("[{name}] failed: {e}");
            }
        }
    }
    println!("{}", table.render());
    match table.write_csv("ablation") {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
