//! Reproduces **Table I** — the qualitative method comparison — as
//! *computed evidence* rather than assertions:
//!
//! * QP: collapses to a single point without pads (trivial optimum).
//! * AR: the full two-branch objective values the collapsed layout no
//!   worse than a spread one (trivial global optimum).
//! * PP: a midpoint-convexity violation is exhibited (non-convex).
//! * Ours: spread, rank-certified layout with the distance (area)
//!   constraints satisfied — controllable area constraint.
//!
//! Usage: `cargo run --release -p gfp-bench --bin table1 [-- --quick] [-- --trace]`
//!
//! With `--trace` (or `GFP_TRACE=file.jsonl`) the run prints an
//! end-of-run telemetry summary; `GFP_TRACE` additionally streams
//! per-iteration solver events to the named JSONL file.

use gfp_baselines::qp::QuadraticPlacer;
use gfp_bench::{Budget, Pipeline, Table};
use gfp_core::diagnostics::check_distance_feasibility;
use gfp_core::{GlobalFloorplanProblem, ProblemOptions, SdpFloorplanner};
use gfp_netlist::suite;
use gfp_rand::Rng;

/// Full two-branch AR objective (paper Eq. 3), σ = 1.
fn ar_full_objective(problem: &GlobalFloorplanProblem, positions: &[(f64, f64)]) -> f64 {
    let n = problem.n;
    let eps = 1e-9;
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let a = problem.a[(i, j)];
            let (ri, rj) = (problem.radii[i], problem.radii[j]);
            let t = (ri + rj) * (ri + rj);
            let d = (positions[i].0 - positions[j].0).powi(2)
                + (positions[i].1 - positions[j].1).powi(2);
            let threshold = (t / (a + eps)).sqrt();
            total += if d >= threshold {
                a * d + t / d.max(1e-12) - 1.0
            } else {
                2.0 * (a * t).sqrt() - 1.0
            };
        }
    }
    total
}

/// PP objective (paper Eq. 4) at a single point set.
fn pp_objective(problem: &GlobalFloorplanProblem, positions: &[(f64, f64)]) -> f64 {
    let n = problem.n;
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let a = problem.a[(i, j)];
            let (ri, rj) = (problem.radii[i], problem.radii[j]);
            let r = ri + rj;
            let s = (ri * rj) * (ri * rj);
            let d = ((positions[i].0 - positions[j].0).powi(2)
                + (positions[i].1 - positions[j].1).powi(2))
            .sqrt()
            .max(1e-9);
            total += if r >= d {
                a * d + s * (r / d - 1.0)
            } else {
                a * d + r / d - 1.0
            };
        }
    }
    total
}

fn main() {
    let tracing = gfp_bench::trace::init_from_args();
    let budget = Budget::from_args();
    let bench = suite::gsrc_n10();
    let pipeline = Pipeline::new(&bench, 1.0, budget);
    let problem = &pipeline.problem;
    println!("Table I reproduction: computed evidence on {}\n", bench.name);

    // --- QP trivial optimum (no pads) -----------------------------------
    let no_pads = GlobalFloorplanProblem::from_netlist(
        &pipeline.netlist,
        &ProblemOptions {
            use_pads: false,
            outline: None,
            ..ProblemOptions::default()
        },
    )
    .expect("problem");
    let qp = QuadraticPlacer::default().place(&no_pads).expect("qp");
    let qp_spread = layout_spread(&qp.positions);

    // --- AR trivial optimum ----------------------------------------------
    let spread_layout = problem.spread_positions();
    let collapsed = vec![(0.0, 0.0); problem.n];
    let ar_collapsed = ar_full_objective(problem, &collapsed);
    let ar_spread = ar_full_objective(problem, &spread_layout);

    // --- PP non-convexity ---------------------------------------------------
    let mut rng = Rng::seed_from_u64(7);
    let scale = problem.length_scale();
    let mut violation: Option<f64> = None;
    for _ in 0..500 {
        let p1: Vec<(f64, f64)> = (0..problem.n)
            .map(|_| (rng.gen_range(-1.0..1.0) * scale, rng.gen_range(-1.0..1.0) * scale))
            .collect();
        let p2: Vec<(f64, f64)> = (0..problem.n)
            .map(|_| (rng.gen_range(-1.0..1.0) * scale, rng.gen_range(-1.0..1.0) * scale))
            .collect();
        let mid: Vec<(f64, f64)> = p1
            .iter()
            .zip(p2.iter())
            .map(|(a, b)| ((a.0 + b.0) / 2.0, (a.1 + b.1) / 2.0))
            .collect();
        let f1 = pp_objective(problem, &p1);
        let f2 = pp_objective(problem, &p2);
        let fm = pp_objective(problem, &mid);
        let gap = fm - 0.5 * (f1 + f2);
        if gap > 1e-6 * f1.abs().max(1.0) {
            violation = Some(gap);
            break;
        }
    }

    // --- Ours: non-trivial + controllable constraints --------------------
    let fp = SdpFloorplanner::new(pipeline.sdp_settings())
        .solve(problem)
        .expect("sdp solves");
    let our_spread = layout_spread(&fp.positions);
    let feas = check_distance_feasibility(problem, &fp.positions, 0.05);

    let mut table = Table::new(vec!["property", "QP", "AR [1,8]", "PP [2]", "Ours"]);
    table.add_row(vec![
        "convex".to_string(),
        "yes".to_string(),
        "yes".to_string(),
        format!("no (midpoint gap {:+.2e})", violation.unwrap_or(f64::NAN)),
        "yes (two SDPs)".to_string(),
    ]);
    table.add_row(vec![
        "non-trivial optimum".to_string(),
        format!("no (collapse spread {qp_spread:.2e})"),
        format!(
            "no (collapsed {:.3e} <= spread {:.3e})",
            ar_collapsed, ar_spread
        ),
        "yes".to_string(),
        format!("yes (spread {our_spread:.2e})"),
    ]);
    table.add_row(vec![
        "area constraint".to_string(),
        "no".to_string(),
        "partly".to_string(),
        "partly".to_string(),
        format!(
            "controllable ({}/{} pairs satisfied)",
            feas.pairs - feas.violations,
            feas.pairs
        ),
    ]);
    table.add_row(vec![
        "rank certificate".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("<W,Z>/tr = {:.2e}", fp.rank_gap),
    ]);
    println!("{}", table.render());
    println!("paper Table I: QP convex/trivial, AR convex/trivial, PP non-convex/non-trivial,");
    println!("ours convex with non-trivial optimum and controllable area constraint.");
    match table.write_csv("table1") {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    assert!(qp_spread < 1e-3, "QP should collapse without pads");
    assert!(
        ar_collapsed <= ar_spread,
        "AR trivial optimum should value collapse no worse"
    );
    assert!(violation.is_some(), "PP should exhibit non-convexity");
    assert!(our_spread > 1.0, "ours should not collapse");
    gfp_bench::trace::finish(tracing);
}

fn layout_spread(positions: &[(f64, f64)]) -> f64 {
    let n = positions.len() as f64;
    let cx = positions.iter().map(|p| p.0).sum::<f64>() / n;
    let cy = positions.iter().map(|p| p.1).sum::<f64>() / n;
    positions
        .iter()
        .map(|p| ((p.0 - cx).powi(2) + (p.1 - cy).powi(2)).sqrt())
        .sum::<f64>()
        / n
}
