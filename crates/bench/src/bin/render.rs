//! Renders the floorplans of every method on one benchmark to SVG
//! files under `results/` — the visual counterpart of Table II.
//!
//! Usage: `cargo run --release -p gfp-bench --bin render [-- --quick] [-- n30]`

use gfp_baselines::annealing::Annealer;
use gfp_baselines::ar::ArFloorplanner;
use gfp_baselines::qp::QuadraticPlacer;
use gfp_bench::{Budget, Pipeline};
use gfp_core::SdpFloorplanner;
use gfp_legalize::{legalize, LegalizeSettings};
use gfp_netlist::{suite, svg};

fn main() {
    let budget = Budget::from_args();
    let name = std::env::args()
        .find(|a| a.starts_with('n') && a[1..].chars().all(|c| c.is_ascii_digit()))
        .unwrap_or_else(|| "n10".to_string());
    let bench = suite::try_by_name(&name).unwrap_or_else(|| {
        let known: Vec<&str> = suite::specs().iter().map(|s| s.name).collect();
        eprintln!("unknown benchmark {name:?}; known: {}", known.join(", "));
        std::process::exit(2);
    });
    let pipeline = Pipeline::new(&bench, 1.0, budget);
    std::fs::create_dir_all("results").expect("results dir");
    let style = svg::SvgStyle::default();
    let pads: Vec<(f64, f64)> = pipeline.netlist.pads().iter().map(|p| (p.x, p.y)).collect();

    let save_legal = |label: &str, centers: &[(f64, f64)]| {
        // Global floorplan (circles).
        let radii: Vec<f64> = pipeline
            .problem
            .areas
            .iter()
            .map(|s| (s / 4.0).sqrt())
            .collect();
        let global_svg =
            svg::render_centers(&pipeline.outline, centers, &radii, &pads, &style);
        let p1 = format!("results/{name}_{label}_global.svg");
        std::fs::write(&p1, global_svg).expect("write svg");
        // Legalized floorplan (rectangles).
        match legalize(
            &pipeline.netlist,
            &pipeline.problem,
            &pipeline.outline,
            centers,
            &LegalizeSettings::default(),
        ) {
            Ok(legal) => {
                let p2 = format!("results/{name}_{label}_legal.svg");
                std::fs::write(&p2, svg::render(&pipeline.outline, &legal.rects, &pads, &style))
                    .expect("write svg");
                println!("{label}: HPWL {:.0} -> {p1}, {p2}", legal.hpwl);
            }
            Err(e) => println!("{label}: legalization failed ({e}) -> {p1}"),
        }
    };

    let sdp = SdpFloorplanner::new(pipeline.sdp_settings())
        .solve(&pipeline.problem)
        .expect("sdp");
    save_legal("ours", &sdp.positions);

    let qp = QuadraticPlacer::default().place(&pipeline.problem).expect("qp");
    save_legal("qp", &qp.positions);

    let ar = ArFloorplanner::default().place(&pipeline.problem).expect("ar");
    save_legal("ar", &ar.positions);

    let sa = Annealer::new(pipeline.budget.anneal_settings(pipeline.problem.n))
        .place(&pipeline.netlist, &pipeline.problem, &pipeline.outline)
        .expect("sa");
    let path = format!("results/{name}_sa_legal.svg");
    std::fs::write(&path, svg::render(&pipeline.outline, &sa.rects, &pads, &style))
        .expect("write svg");
    println!("parquet-sa: HPWL {:.0} (fits: {}) -> {path}", sa.hpwl, sa.fits);
}
