//! Reproduces **Fig. 5(b)**: per-iteration runtime of sub-problem 1 as
//! a function of the module count, with a log-log slope fit. The paper
//! plots MOSEK (interior-point) times against an `n⁴` reference; our
//! substitute backends are measured the same way — the dense barrier
//! IPM shows the steep polynomial growth, the ADMM backend a milder
//! one (that trade is exactly why both exist; see DESIGN.md).
//!
//! Usage: `cargo run --release -p gfp-bench --bin fig5b [-- --quick|--full]`

use std::time::Instant;

use gfp_bench::{Budget, Table};
use gfp_conic::ipm::BarrierSettings;
use gfp_conic::AdmmSettings;
use gfp_core::lifted::objective_matrix;
use gfp_core::subproblems::{solve_subproblem1, Sp1Backend};
use gfp_core::{GlobalFloorplanProblem, ProblemOptions};
use gfp_linalg::{Mat, Qr};
use gfp_netlist::suite::{generate, SuiteSpec};

/// Builds a synthetic instance with exactly `n` modules.
fn instance(n: usize) -> GlobalFloorplanProblem {
    let spec = SuiteSpec {
        name: "scaling",
        modules: n,
        nets: 6 * n,
        pads: n / 2 + 8,
        area_min: 500.0,
        area_max: 8_000.0,
        seed: 0x5CA1E + n as u64,
    };
    let bench = generate(&spec);
    GlobalFloorplanProblem::from_netlist(&bench.netlist, &ProblemOptions::default())
        .expect("valid instance")
        .normalized()
}

/// Least-squares slope of log(t) vs log(n).
fn loglog_slope(ns: &[usize], ts: &[f64]) -> f64 {
    let rows: Vec<Vec<f64>> = ns.iter().map(|&n| vec![1.0, (n as f64).ln()]).collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let a = Mat::from_rows(&refs);
    let b: Vec<f64> = ts.iter().map(|t| t.ln()).collect();
    Qr::new(&a)
        .and_then(|qr| qr.solve_least_squares(&b))
        .map(|x| x[1])
        .unwrap_or(f64::NAN)
}

fn main() {
    let budget = Budget::from_args();
    let admm_sizes: Vec<usize> = match budget {
        Budget::Quick => vec![10, 16, 24],
        Budget::Standard => vec![10, 16, 24, 36, 50, 70],
        Budget::Full => vec![10, 16, 24, 36, 50, 70, 100, 140, 200],
    };
    let ipm_sizes: Vec<usize> = match budget {
        Budget::Quick => vec![6, 10, 14],
        _ => vec![6, 10, 14, 20, 26, 32],
    };
    println!("Fig. 5(b) reproduction (budget {budget:?})");
    println!("one sub-problem-1 solve per size; log-log slope ≈ growth exponent\n");

    let mut table = Table::new(vec!["backend", "n", "seconds"]);
    let mut admm_times = Vec::new();
    for &n in &admm_sizes {
        let p = instance(n);
        let obj = objective_matrix(&p, &p.a, None);
        let t0 = Instant::now();
        let r = solve_subproblem1(
            &p,
            &p.a,
            &obj,
            &Sp1Backend::Admm(AdmmSettings {
                eps: 1e-4,
                max_iter: 4000,
                ..AdmmSettings::default()
            }),
            None,
        )
        .expect("admm solves");
        let secs = t0.elapsed().as_secs_f64();
        admm_times.push(secs);
        table.add_row(vec!["admm".to_string(), n.to_string(), format!("{secs:.3}")]);
        eprintln!("[admm n={n}] {secs:.3}s status {:?}", r.status);
    }
    let mut ipm_times = Vec::new();
    for &n in &ipm_sizes {
        let p = instance(n);
        let obj = objective_matrix(&p, &p.a, None);
        let t0 = Instant::now();
        let r = solve_subproblem1(
            &p,
            &p.a,
            &obj,
            &Sp1Backend::Ipm(BarrierSettings {
                eps: 1e-6,
                ..BarrierSettings::default()
            }),
            None,
        );
        let secs = t0.elapsed().as_secs_f64();
        match r {
            Ok(_) => {
                ipm_times.push(secs);
                table.add_row(vec!["ipm".to_string(), n.to_string(), format!("{secs:.3}")]);
                eprintln!("[ipm n={n}] {secs:.3}s");
            }
            Err(e) => eprintln!("[ipm n={n}] failed: {e}"),
        }
    }

    println!("{}", table.render());
    let admm_slope = loglog_slope(&admm_sizes, &admm_times);
    println!("ADMM   growth exponent ≈ {admm_slope:.2}");
    if ipm_times.len() == ipm_sizes.len() {
        let ipm_slope = loglog_slope(&ipm_sizes, &ipm_times);
        println!("IPM    growth exponent ≈ {ipm_slope:.2}");
        println!("(paper reference line: n^4 for the MOSEK interior-point solver; our dense");
        println!("IPM tracks the steep polynomial, the first-order ADMM grows more slowly)");
    }
    match table.write_csv("fig5b") {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
