//! Reproduces **Table II**: legalized HPWL of ours vs AR \[1\] vs PP \[9\]
//! on the GSRC suite at outline aspect ratios 1:1 and 1:2.
//!
//! Usage: `cargo run --release -p gfp-bench --bin table2 [-- --quick|--full]`

use gfp_bench::table::{fmt_hpwl, fmt_pct};
use gfp_bench::{delta_percent, Budget, Pipeline, Table};
use gfp_netlist::suite;

fn main() {
    let budget = Budget::from_args();
    println!("Table II reproduction (budget {budget:?})");
    println!("HPWL after the shared legalizer; Δ% = (other − ours) / ours\n");

    let mut table = Table::new(vec![
        "bench", "blocks", "nets", "ratio", "ours", "AR", "AR Δ%", "PP", "PP Δ%",
    ]);
    let mut deltas_ar: Vec<f64> = Vec::new();
    let mut deltas_pp: Vec<f64> = Vec::new();

    for name in budget.gsrc_names() {
        let bench = suite::by_name(name);
        for ratio in [1.0, 2.0] {
            let pipeline = Pipeline::new(&bench, ratio, budget);
            let ours = pipeline.run_sdp();
            let ar = pipeline.run_ar();
            let pp = pipeline.run_pp();
            let d_ar = delta_percent(ours.hpwl, ar.hpwl);
            let d_pp = delta_percent(ours.hpwl, pp.hpwl);
            if let Some(d) = d_ar {
                deltas_ar.push(d);
            }
            if let Some(d) = d_pp {
                deltas_pp.push(d);
            }
            table.add_row(vec![
                name.to_string(),
                pipeline.problem.n.to_string(),
                pipeline.netlist.nets().len().to_string(),
                format!("1:{ratio:.0}"),
                fmt_hpwl(ours.hpwl),
                fmt_hpwl(ar.hpwl),
                fmt_pct(d_ar),
                fmt_hpwl(pp.hpwl),
                fmt_pct(d_pp),
            ]);
            eprintln!(
                "[{name} 1:{ratio:.0}] ours {} ({:.1}s+{:.1}s) | ar {} | pp {}",
                fmt_hpwl(ours.hpwl),
                ours.global_seconds,
                ours.legal_seconds,
                fmt_hpwl(ar.hpwl),
                fmt_hpwl(pp.hpwl),
            );
        }
    }

    let avg = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    println!("{}", table.render());
    println!(
        "avg Δ: AR {:+.2}%  PP {:+.2}%   (paper: AR +14.71/+14.59, PP +15.58/+20.10)",
        avg(&deltas_ar),
        avg(&deltas_pp)
    );
    match table.write_csv("table2") {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
