//! Reproduces **Table III**: legalized HPWL of ours vs a Parquet-4
//! style sequence-pair annealer \[20\] vs the analytical density-driven
//! baseline \[7\], on MCNC (ami33/ami49) and large GSRC instances.
//!
//! Usage: `cargo run --release -p gfp-bench --bin table3 [-- --quick|--full]`

use gfp_bench::table::{fmt_hpwl, fmt_pct};
use gfp_bench::{delta_percent, Budget, Pipeline, Table};
use gfp_netlist::suite;

fn main() {
    let budget = Budget::from_args();
    println!("Table III reproduction (budget {budget:?})");
    println!("Pads at benchmark-given locations; annealer reports its own packing\n");

    let mut table = Table::new(vec![
        "bench", "ratio", "ours", "parquet-sa", "SA Δ%", "analytical", "An Δ%",
    ]);
    let mut deltas_sa: Vec<f64> = Vec::new();
    let mut deltas_an: Vec<f64> = Vec::new();

    for name in budget.table3_names() {
        let bench = suite::by_name(name);
        for ratio in [1.0, 2.0] {
            let pipeline = Pipeline::new(&bench, ratio, budget);
            let ours = pipeline.run_sdp();
            let sa = pipeline.run_annealing();
            let an = pipeline.run_analytical();
            let d_sa = delta_percent(ours.hpwl, sa.hpwl);
            let d_an = delta_percent(ours.hpwl, an.hpwl);
            if let Some(d) = d_sa {
                deltas_sa.push(d);
            }
            if let Some(d) = d_an {
                deltas_an.push(d);
            }
            table.add_row(vec![
                name.to_string(),
                format!("1:{ratio:.0}"),
                fmt_hpwl(ours.hpwl),
                fmt_hpwl(sa.hpwl),
                fmt_pct(d_sa),
                fmt_hpwl(an.hpwl),
                fmt_pct(d_an),
            ]);
            eprintln!(
                "[{name} 1:{ratio:.0}] ours {} ({:.1}s) | sa {} ({:.1}s) | analytical {} ({:.1}s)",
                fmt_hpwl(ours.hpwl),
                ours.global_seconds + ours.legal_seconds,
                fmt_hpwl(sa.hpwl),
                sa.global_seconds,
                fmt_hpwl(an.hpwl),
                an.global_seconds + an.legal_seconds,
            );
        }
    }

    let avg = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    println!("{}", table.render());
    println!(
        "avg Δ: SA {:+.2}%  analytical {:+.2}%   (paper: Parquet +16.89/+18.23, Analytical +3.02/+4.56)",
        avg(&deltas_sa),
        avg(&deltas_an)
    );
    match table.write_csv("table3") {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
