//! End-to-end pipelines: global floorplanning method → shared
//! legalizer → final HPWL, mirroring the paper's evaluation protocol.

use std::time::Instant;

use gfp_baselines::analytical::AnalyticalFloorplanner;
use gfp_baselines::annealing::Annealer;
use gfp_baselines::ar::ArFloorplanner;
use gfp_baselines::pp::{PpFloorplanner, PpSettings};
use gfp_baselines::qp::QuadraticPlacer;
use gfp_core::enhance::Enhancements;
use gfp_core::{
    FloorplannerSettings, GlobalFloorplanProblem, ProblemOptions, SdpFloorplanner,
    SolveSupervisor,
};
use gfp_legalize::{legalize, LegalizeSettings};
use gfp_netlist::suite::Benchmark;
use gfp_netlist::{Netlist, Outline};
use gfp_telemetry as telemetry;

use crate::Budget;

/// Result of one method on one benchmark/outline.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name.
    pub method: String,
    /// Legalized HPWL; `None` when legalization failed (the paper's
    /// missing points).
    pub hpwl: Option<f64>,
    /// Global floorplanning wall-clock seconds.
    pub global_seconds: f64,
    /// Legalization wall-clock seconds.
    pub legal_seconds: f64,
    /// Named wall-clock phases in execution order (currently
    /// `global` and, when a separate legalization ran, `legalize`).
    pub phases: Vec<(String, f64)>,
    /// Failure detail when `hpwl` is `None`.
    pub failure: Option<String>,
}

impl MethodResult {
    fn failed(method: &str, global_seconds: f64, reason: String) -> Self {
        MethodResult {
            method: method.to_string(),
            hpwl: None,
            global_seconds,
            legal_seconds: 0.0,
            phases: vec![("global".to_string(), global_seconds)],
            failure: Some(reason),
        }
    }

    /// Total wall-clock seconds across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// `phase=secs` pairs joined with `, ` — for log lines.
    pub fn phase_breakdown(&self) -> String {
        self.phases
            .iter()
            .map(|(name, s)| format!("{name}={s:.2}s"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Emits the end-of-method telemetry event for one pipeline result.
fn method_event(result: &MethodResult) {
    if telemetry::enabled() {
        telemetry::event(
            "pipeline.method",
            &[
                ("method", telemetry::Value::Text(result.method.clone())),
                ("hpwl", result.hpwl.unwrap_or(f64::NAN).into()),
                ("global_seconds", result.global_seconds.into()),
                ("legal_seconds", result.legal_seconds.into()),
                ("failed", result.failure.is_some().into()),
            ],
        );
    }
}

/// A prepared benchmark instance: netlist with pads snapped to the
/// outline, the captured problem, and the outline itself.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Benchmark name.
    pub name: String,
    /// Netlist with pads on the outline boundary.
    pub netlist: Netlist,
    /// Captured problem (aspect limit 3, outline bounds, pads).
    pub problem: GlobalFloorplanProblem,
    /// The fixed outline.
    pub outline: Outline,
    /// Budget for solver settings.
    pub budget: Budget,
}

impl Pipeline {
    /// Prepares a benchmark at the given outline aspect ratio
    /// (height : width, so the paper's "1:2" is `ratio = 2.0`).
    ///
    /// # Panics
    ///
    /// Panics if the benchmark cannot be captured (generator
    /// invariants guarantee it can).
    pub fn new(bench: &Benchmark, ratio: f64, budget: Budget) -> Self {
        let (netlist, outline) = bench.with_pads_on_outline(ratio);
        let options = ProblemOptions {
            outline: Some(outline),
            aspect_limit: 3.0,
            ..ProblemOptions::default()
        };
        let problem = GlobalFloorplanProblem::from_netlist(&netlist, &options)
            .expect("benchmark capture");
        Pipeline {
            name: bench.name.clone(),
            netlist,
            problem,
            outline,
            budget,
        }
    }

    fn legalize_centers(&self, method: &str, centers: &[(f64, f64)], t_global: f64) -> MethodResult {
        let t0 = Instant::now();
        let outcome = {
            let _span = telemetry::span("pipeline.legalize");
            legalize(
                &self.netlist,
                &self.problem,
                &self.outline,
                centers,
                &LegalizeSettings::default(),
            )
        };
        let legal_seconds = t0.elapsed().as_secs_f64();
        let phases = vec![
            ("global".to_string(), t_global),
            ("legalize".to_string(), legal_seconds),
        ];
        let result = match outcome {
            Ok(legal) => MethodResult {
                method: method.to_string(),
                hpwl: Some(legal.hpwl),
                global_seconds: t_global,
                legal_seconds,
                phases,
                failure: None,
            },
            Err(e) => MethodResult {
                method: method.to_string(),
                hpwl: None,
                global_seconds: t_global,
                legal_seconds,
                phases,
                failure: Some(e.to_string()),
            },
        };
        method_event(&result);
        result
    }

    /// Ours: the SDP convex-iteration floorplanner with the given
    /// settings (use [`sdp_settings`](Self::sdp_settings) for the
    /// budget default), then the shared legalizer.
    pub fn run_sdp_with(&self, settings: FloorplannerSettings) -> MethodResult {
        let t0 = Instant::now();
        let solved = {
            let _span = telemetry::span("pipeline.global");
            SdpFloorplanner::new(settings).solve(&self.problem)
        };
        match solved {
            Ok(fp) => {
                let t = t0.elapsed().as_secs_f64();
                self.legalize_centers("ours", &fp.positions, t)
            }
            Err(e) => {
                let r = MethodResult::failed("ours", t0.elapsed().as_secs_f64(), e.to_string());
                method_event(&r);
                r
            }
        }
    }

    /// Ours behind the [`SolveSupervisor`]: same pipeline as
    /// [`run_sdp_with`](Self::run_sdp_with), but the solve never fails —
    /// budget/numerical breakdowns degrade to the best-known placement
    /// and the method name carries the quality verdict (e.g.
    /// `ours[degraded]`) so result tables surface non-clean runs.
    pub fn run_sdp_supervised(&self, settings: FloorplannerSettings) -> MethodResult {
        self.run_sdp_supervised_with_report(settings).0
    }

    /// [`run_sdp_supervised`](Self::run_sdp_supervised), additionally
    /// returning the structured [`SolveReport`](telemetry::SolveReport)
    /// (`gfp-solve-report-v1`: per-α-round convergence table, span
    /// tree, metric snapshots) captured at the end of the global
    /// solve — the same artifact `GFP_REPORT=path` writes to disk.
    pub fn run_sdp_supervised_with_report(
        &self,
        settings: FloorplannerSettings,
    ) -> (MethodResult, telemetry::SolveReport) {
        let t0 = Instant::now();
        let result = {
            let _span = telemetry::span("pipeline.global");
            SolveSupervisor::new(settings).solve(&self.problem)
        };
        let t = t0.elapsed().as_secs_f64();
        let report = result.solve_report();
        let method = if result.causes.is_empty() {
            "ours".to_string()
        } else {
            format!("ours[{}]", result.quality.as_str())
        };
        (self.legalize_centers(&method, &result.floorplan.positions, t), report)
    }

    /// Budget-default SDP settings for this instance.
    pub fn sdp_settings(&self) -> FloorplannerSettings {
        self.budget.sdp_settings(self.problem.n)
    }

    /// Ours with the budget default settings.
    pub fn run_sdp(&self) -> MethodResult {
        self.run_sdp_with(self.sdp_settings())
    }

    /// Ours with specific enhancements / α (for the Fig. 4 sweeps).
    pub fn run_sdp_variant(
        &self,
        enhancements: Enhancements,
        aspect_limit: f64,
        alpha0: Option<f64>,
    ) -> MethodResult {
        let options = ProblemOptions {
            outline: Some(self.outline),
            aspect_limit,
            ..ProblemOptions::default()
        };
        let problem = match GlobalFloorplanProblem::from_netlist(&self.netlist, &options) {
            Ok(p) => p,
            Err(e) => return MethodResult::failed("ours", 0.0, e.to_string()),
        };
        let mut settings = self.budget.sdp_settings(problem.n);
        settings.enhancements = enhancements;
        if let Some(a) = alpha0 {
            settings.alpha0 = a;
            settings.max_alpha_rounds = 1; // pinned α, as in the sweep
            settings.max_iter = settings.max_iter.max(8);
        }
        let t0 = Instant::now();
        let solved = {
            let _span = telemetry::span("pipeline.global");
            SdpFloorplanner::new(settings).solve(&problem)
        };
        match solved {
            Ok(fp) => {
                let t = t0.elapsed().as_secs_f64();
                // Legalize against the variant problem (its aspect limit).
                self.legalize_centers("ours", &fp.positions, t)
            }
            Err(e) => {
                let r = MethodResult::failed("ours", t0.elapsed().as_secs_f64(), e.to_string());
                method_event(&r);
                r
            }
        }
    }

    /// The AR baseline → shared legalizer.
    pub fn run_ar(&self) -> MethodResult {
        let t0 = Instant::now();
        let placed = {
            let _span = telemetry::span("pipeline.global");
            ArFloorplanner::default().place(&self.problem)
        };
        match placed {
            Ok(pl) => {
                let t = t0.elapsed().as_secs_f64();
                self.legalize_centers("ar", &pl.positions, t)
            }
            Err(e) => {
                let r = MethodResult::failed("ar", t0.elapsed().as_secs_f64(), e.to_string());
                method_event(&r);
                r
            }
        }
    }

    /// The PP baseline → shared legalizer.
    pub fn run_pp(&self) -> MethodResult {
        let t0 = Instant::now();
        let settings = PpSettings {
            restarts: if self.budget == Budget::Quick { 1 } else { 3 },
            ..PpSettings::default()
        };
        let placed = {
            let _span = telemetry::span("pipeline.global");
            PpFloorplanner::new(settings).place(&self.problem)
        };
        match placed {
            Ok(pl) => {
                let t = t0.elapsed().as_secs_f64();
                self.legalize_centers("pp", &pl.positions, t)
            }
            Err(e) => {
                let r = MethodResult::failed("pp", t0.elapsed().as_secs_f64(), e.to_string());
                method_event(&r);
                r
            }
        }
    }

    /// The QP baseline → shared legalizer.
    pub fn run_qp(&self) -> MethodResult {
        let t0 = Instant::now();
        let placed = {
            let _span = telemetry::span("pipeline.global");
            QuadraticPlacer::default().place(&self.problem)
        };
        match placed {
            Ok(pl) => {
                let t = t0.elapsed().as_secs_f64();
                self.legalize_centers("qp", &pl.positions, t)
            }
            Err(e) => {
                let r = MethodResult::failed("qp", t0.elapsed().as_secs_f64(), e.to_string());
                method_event(&r);
                r
            }
        }
    }

    /// The Parquet-style annealer. It produces legal shapes directly
    /// (its own packing is the legalization, as in the paper where
    /// Parquet results are reported from the tool itself).
    pub fn run_annealing(&self) -> MethodResult {
        let t0 = Instant::now();
        let settings = self.budget.anneal_settings(self.problem.n);
        let placed = {
            let _span = telemetry::span("pipeline.global");
            Annealer::new(settings).place(&self.netlist, &self.problem, &self.outline)
        };
        let result = match placed {
            Ok(fp) => {
                let t = t0.elapsed().as_secs_f64();
                MethodResult {
                    method: "parquet-sa".into(),
                    hpwl: if fp.fits { Some(fp.hpwl) } else { None },
                    global_seconds: t,
                    legal_seconds: 0.0,
                    phases: vec![("global".to_string(), t)],
                    failure: if fp.fits {
                        None
                    } else {
                        Some("packing exceeds outline".into())
                    },
                }
            }
            Err(e) => {
                MethodResult::failed("parquet-sa", t0.elapsed().as_secs_f64(), e.to_string())
            }
        };
        method_event(&result);
        result
    }

    /// The analytical baseline → shared legalizer.
    pub fn run_analytical(&self) -> MethodResult {
        let t0 = Instant::now();
        let placed = {
            let _span = telemetry::span("pipeline.global");
            AnalyticalFloorplanner::default().place(&self.netlist, &self.problem, &self.outline)
        };
        match placed {
            Ok(pl) => {
                let t = t0.elapsed().as_secs_f64();
                self.legalize_centers("analytical", &pl.positions, t)
            }
            Err(e) => {
                let r = MethodResult::failed(
                    "analytical",
                    t0.elapsed().as_secs_f64(),
                    e.to_string(),
                );
                method_event(&r);
                r
            }
        }
    }
}

/// Percentage improvement of `ours` over `other` (the paper's Δ%):
/// `(other − ours) / ours · 100`.
pub fn delta_percent(ours: Option<f64>, other: Option<f64>) -> Option<f64> {
    match (ours, other) {
        (Some(a), Some(b)) if a > 0.0 => Some((b - a) / a * 100.0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfp_netlist::suite;

    #[test]
    fn pipeline_prepares_benchmark() {
        let p = Pipeline::new(&suite::gsrc_n10(), 2.0, Budget::Quick);
        assert_eq!(p.problem.n, 10);
        assert!((p.outline.aspect_ratio() - 2.0).abs() < 1e-12);
        assert_eq!(p.problem.aspect_limit, 3.0);
    }

    #[test]
    fn delta_percent_math() {
        assert_eq!(delta_percent(Some(100.0), Some(115.0)), Some(15.0));
        assert_eq!(delta_percent(None, Some(1.0)), None);
        assert_eq!(delta_percent(Some(1.0), None), None);
    }

    #[test]
    fn qp_pipeline_end_to_end() {
        let p = Pipeline::new(&suite::gsrc_n10(), 1.0, Budget::Quick);
        let r = p.run_qp();
        // QP collapses its layout, which may or may not legalize, but
        // the pipeline must produce a well-formed result either way.
        assert_eq!(r.method, "qp");
        assert!(r.hpwl.is_some() || r.failure.is_some());
    }
}
