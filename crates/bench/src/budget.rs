//! Experiment budgets: quick (CI-sized) vs standard vs full.

use gfp_conic::AdmmSettings;
use gfp_core::FloorplannerSettings;

/// How much compute an experiment binary may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Smallest benchmarks, lowest solver budgets (seconds).
    Quick,
    /// The default: n10–n50 class benchmarks, moderate budgets
    /// (minutes).
    Standard,
    /// Everything including n100/n200 (tens of minutes to hours, like
    /// the paper's 2.5 h n200 runs).
    Full,
}

impl Budget {
    /// Parses `--quick` / `--full` from the command line.
    pub fn from_args() -> Budget {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Budget::Quick
        } else if args.iter().any(|a| a == "--full") {
            Budget::Full
        } else {
            Budget::Standard
        }
    }

    /// Benchmark names for the GSRC comparison experiments (Table II).
    pub fn gsrc_names(self) -> Vec<&'static str> {
        match self {
            Budget::Quick => vec!["n10"],
            Budget::Standard => vec!["n10", "n30", "n50"],
            Budget::Full => vec!["n10", "n30", "n50", "n100", "n200"],
        }
    }

    /// Benchmark names for Table III.
    pub fn table3_names(self) -> Vec<&'static str> {
        match self {
            Budget::Quick => vec!["ami33"],
            Budget::Standard => vec!["ami33", "ami49"],
            Budget::Full => vec!["ami33", "ami49", "n100", "n200"],
        }
    }

    /// SDP floorplanner settings scaled to the instance size,
    /// following the paper's per-size tuning (larger benchmarks start
    /// at a larger α and run fewer iterations). Quality scales with
    /// budget exactly as the paper's MOSEK-hours do: `Quick` may trail
    /// the AR baseline slightly, `Standard` is competitive, `Full`
    /// wins (see EXPERIMENTS.md).
    pub fn sdp_settings(self, n: usize) -> FloorplannerSettings {
        let mut s = FloorplannerSettings::fast();
        match self {
            Budget::Quick => {
                // fast(): α from 16 with x8 growth, 6 inner iterations.
                s.max_iter = 6;
            }
            Budget::Standard => {
                // Finer α search finds the smallest rank-2 α (the
                // paper's best-quality point).
                s.alpha0 = 8.0;
                s.alpha_growth = 2.0;
                s.max_alpha_rounds = 14;
                s.max_iter = 10;
            }
            Budget::Full => {
                s.alpha0 = 8.0;
                s.alpha_growth = 2.0;
                s.max_alpha_rounds = 14;
                s.max_iter = 20;
                s.backend = gfp_core::Backend::Admm(AdmmSettings {
                    eps: 1e-5,
                    max_iter: 12_000,
                    ..AdmmSettings::default()
                });
            }
        }
        if n >= 100 {
            // Paper: "α starts from 1024" for n100/n200, max_iter 100/20.
            s.alpha0 = 1024.0;
            s.alpha_growth = 4.0;
            s.max_alpha_rounds = 8;
            s.max_iter = if n >= 200 { 3 } else { 5 };
            s.backend = gfp_core::Backend::Admm(AdmmSettings {
                eps: 1e-4,
                max_iter: if n >= 200 { 2000 } else { 3000 },
                ..AdmmSettings::default()
            });
        }
        s
    }

    /// Annealer settings scaled to instance size.
    pub fn anneal_settings(self, n: usize) -> gfp_baselines::annealing::AnnealSettings {
        use gfp_baselines::annealing::AnnealSettings;
        let (moves, steps) = match self {
            Budget::Quick => (80, 40),
            Budget::Standard => (250, 80),
            Budget::Full => (400, 120),
        };
        // O(n²) packing: keep the move count flat but let big
        // instances take their time, as Parquet does.
        let _ = n;
        AnnealSettings {
            moves_per_temp: moves,
            temp_steps: steps,
            ..AnnealSettings::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_benchmarks() {
        assert_eq!(Budget::Quick.gsrc_names(), vec!["n10"]);
        assert!(Budget::Full.gsrc_names().contains(&"n200"));
        assert!(Budget::Standard.table3_names().contains(&"ami49"));
    }

    #[test]
    fn large_instances_get_paper_alpha() {
        let s = Budget::Standard.sdp_settings(100);
        assert_eq!(s.alpha0, 1024.0);
        let s = Budget::Standard.sdp_settings(30);
        assert!(s.alpha0 < 1024.0);
    }
}
