//! Micro-benchmarks for the linear-algebra kernels that dominate
//! the floorplanner: symmetric eigendecomposition (sub-problem 2 and
//! every ADMM PSD projection), `svec` round trips and HPWL evaluation.
//! Runs on the std-only harness in `gfp_bench::microbench`.

use gfp_bench::microbench::Group;
use gfp_linalg::svec::{smat, svec};
use gfp_linalg::{eigh, Mat};
use gfp_netlist::{hpwl, suite};
use gfp_rand::Rng;

fn random_sym(n: usize, seed: u64) -> Mat {
    let mut rng = Rng::seed_from_u64(seed);
    let mut a = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = rng.gen_range(-1.0..1.0);
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

fn bench_eigh() {
    let group = Group::new("eigh");
    for n in [12usize, 32, 52, 102] {
        let a = random_sym(n, 42);
        group.bench(&n.to_string(), 10, || eigh(&a).expect("eigh"));
    }
}

fn bench_svec() {
    let group = Group::new("svec");
    let a = random_sym(102, 7);
    group.bench("roundtrip_102", 20, || {
        let v = svec(&a);
        smat(&v)
    });
}

fn bench_hpwl() {
    let group = Group::new("hpwl");
    let bench = suite::gsrc_n200();
    let positions: Vec<(f64, f64)> = (0..200)
        .map(|i| ((i % 20) as f64 * 10.0, (i / 20) as f64 * 10.0))
        .collect();
    group.bench("n200", 20, || hpwl::hpwl(&bench.netlist, &positions));
}

fn main() {
    bench_eigh();
    bench_svec();
    bench_hpwl();
}
