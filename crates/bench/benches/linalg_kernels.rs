//! Criterion benchmarks for the linear-algebra kernels that dominate
//! the floorplanner: symmetric eigendecomposition (sub-problem 2 and
//! every ADMM PSD projection), `svec` round trips and HPWL evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfp_linalg::svec::{smat, svec};
use gfp_linalg::{eigh, Mat};
use gfp_netlist::{hpwl, suite};

fn random_sym(n: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let mut a = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = next();
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

fn bench_eigh(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigh");
    group.sample_size(10);
    for n in [12usize, 32, 52, 102] {
        let a = random_sym(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| eigh(a).expect("eigh"))
        });
    }
    group.finish();
}

fn bench_svec(c: &mut Criterion) {
    let a = random_sym(102, 7);
    c.bench_function("svec_roundtrip_102", |b| {
        b.iter(|| {
            let v = svec(&a);
            smat(&v)
        })
    });
}

fn bench_hpwl(c: &mut Criterion) {
    let bench = suite::gsrc_n200();
    let positions: Vec<(f64, f64)> = (0..200)
        .map(|i| ((i % 20) as f64 * 10.0, (i / 20) as f64 * 10.0))
        .collect();
    c.bench_function("hpwl_n200", |b| {
        b.iter(|| hpwl::hpwl(&bench.netlist, &positions))
    });
}

criterion_group!(benches, bench_eigh, bench_svec, bench_hpwl);
criterion_main!(benches);
