//! Criterion benchmarks for the baseline floorplanners — the
//! "Efficiency" row of Table I made measurable: QP fastest, AR/PP
//! fast, annealing move throughput, analytical rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfp_baselines::annealing::SequencePair;
use gfp_baselines::ar::ArFloorplanner;
use gfp_baselines::pp::{PpFloorplanner, PpSettings};
use gfp_baselines::qp::QuadraticPlacer;
use gfp_core::{GlobalFloorplanProblem, ProblemOptions};
use gfp_netlist::suite;

fn problem(name: &str) -> GlobalFloorplanProblem {
    let b = suite::by_name(name);
    GlobalFloorplanProblem::from_netlist(&b.netlist, &ProblemOptions::default()).expect("capture")
}

fn bench_qp(c: &mut Criterion) {
    let mut group = c.benchmark_group("qp");
    group.sample_size(20);
    for name in ["n10", "n50", "n200"] {
        let p = problem(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            let placer = QuadraticPlacer::default();
            b.iter(|| placer.place(p).expect("qp"))
        });
    }
    group.finish();
}

fn bench_ar_pp(c: &mut Criterion) {
    let p = problem("n30");
    let mut group = c.benchmark_group("nonlinear_baselines");
    group.sample_size(10);
    group.bench_function("ar_n30", |b| {
        let f = ArFloorplanner::default();
        b.iter(|| f.place(&p).expect("ar"))
    });
    group.bench_function("pp_n30_single_start", |b| {
        let f = PpFloorplanner::new(PpSettings {
            restarts: 0,
            ..PpSettings::default()
        });
        b.iter(|| f.place(&p).expect("pp"))
    });
    group.finish();
}

fn bench_sequence_pair_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequence_pair_pack");
    group.sample_size(20);
    for n in [33usize, 100, 200] {
        let sp = SequencePair::identity(n);
        let widths: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let heights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &sp, |b, sp| {
            b.iter(|| sp.pack(&widths, &heights))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qp, bench_ar_pp, bench_sequence_pair_packing);
criterion_main!(benches);
