//! Micro-benchmarks for the baseline floorplanners — the
//! "Efficiency" row of Table I made measurable: QP fastest, AR/PP
//! fast, annealing move throughput, analytical rounds.
//! Runs on the std-only harness in `gfp_bench::microbench`.

use gfp_baselines::annealing::SequencePair;
use gfp_baselines::ar::ArFloorplanner;
use gfp_baselines::pp::{PpFloorplanner, PpSettings};
use gfp_baselines::qp::QuadraticPlacer;
use gfp_bench::microbench::Group;
use gfp_core::{GlobalFloorplanProblem, ProblemOptions};
use gfp_netlist::suite;

fn problem(name: &str) -> GlobalFloorplanProblem {
    let b = suite::by_name(name);
    GlobalFloorplanProblem::from_netlist(&b.netlist, &ProblemOptions::default()).expect("capture")
}

fn bench_qp() {
    let group = Group::new("qp");
    for name in ["n10", "n50", "n200"] {
        let p = problem(name);
        let placer = QuadraticPlacer::default();
        group.bench(name, 20, || placer.place(&p).expect("qp"));
    }
}

fn bench_ar_pp() {
    let p = problem("n30");
    let group = Group::new("nonlinear_baselines");
    let ar = ArFloorplanner::default();
    group.bench("ar_n30", 10, || ar.place(&p).expect("ar"));
    let pp = PpFloorplanner::new(PpSettings {
        restarts: 0,
        ..PpSettings::default()
    });
    group.bench("pp_n30_single_start", 10, || pp.place(&p).expect("pp"));
}

fn bench_sequence_pair_packing() {
    let group = Group::new("sequence_pair_pack");
    for n in [33usize, 100, 200] {
        let sp = SequencePair::identity(n);
        let widths: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let heights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        group.bench(&n.to_string(), 20, || sp.pack(&widths, &heights));
    }
}

fn main() {
    bench_qp();
    bench_ar_pp();
    bench_sequence_pair_packing();
}
