//! Criterion benchmarks for the paper's core pipeline pieces:
//! sub-problem 1 solve time vs n (the kernel behind Fig. 5(b)),
//! closed-form sub-problem 2, and one full convex iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfp_conic::AdmmSettings;
use gfp_core::lifted::{objective_matrix, Lift};
use gfp_core::subproblems::{solve_subproblem1, solve_subproblem2, Sp1Backend};
use gfp_core::{
    Backend, FloorplannerSettings, GlobalFloorplanProblem, ProblemOptions, SdpFloorplanner,
};
use gfp_netlist::suite;

fn problem(name: &str) -> GlobalFloorplanProblem {
    let b = suite::by_name(name);
    GlobalFloorplanProblem::from_netlist(&b.netlist, &ProblemOptions::default())
        .expect("capture")
        .normalized()
}

fn bench_subproblem1(c: &mut Criterion) {
    let mut group = c.benchmark_group("subproblem1_admm");
    group.sample_size(10);
    for name in ["n10", "n30"] {
        let p = problem(name);
        let obj = objective_matrix(&p, &p.a, None);
        let backend = Sp1Backend::Admm(AdmmSettings {
            eps: 1e-4,
            max_iter: 4000,
            ..AdmmSettings::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| solve_subproblem1(p, &p.a, &obj, &backend, None).expect("sp1"))
        });
    }
    group.finish();
}

fn bench_subproblem2(c: &mut Criterion) {
    let mut group = c.benchmark_group("subproblem2_closed_form");
    group.sample_size(20);
    for n in [10usize, 50, 100, 200] {
        let lift = Lift::new(n);
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 14) as f64, (i / 14) as f64))
            .collect();
        let z = lift.z_matrix(&lift.embed_positions(&positions, 0.3));
        group.bench_with_input(BenchmarkId::from_parameter(n), &z, |b, z| {
            b.iter(|| solve_subproblem2(z, n).expect("sp2"))
        });
    }
    group.finish();
}

fn bench_full_iteration(c: &mut Criterion) {
    let p = problem("n10");
    let mut settings = FloorplannerSettings::fast();
    settings.max_alpha_rounds = 1;
    settings.max_iter = 1;
    settings.alpha0 = 1024.0;
    settings.backend = Backend::Admm(AdmmSettings {
        eps: 1e-4,
        max_iter: 2000,
        ..AdmmSettings::default()
    });
    let mut group = c.benchmark_group("convex_iteration");
    group.sample_size(10);
    group.bench_function("one_iteration_n10", |b| {
        let solver = SdpFloorplanner::new(settings.clone());
        b.iter(|| solver.solve(&p).expect("solve"))
    });
    group.finish();
}

criterion_group!(benches, bench_subproblem1, bench_subproblem2, bench_full_iteration);
criterion_main!(benches);
