//! Micro-benchmarks for the paper's core pipeline pieces:
//! sub-problem 1 solve time vs n (the kernel behind Fig. 5(b)),
//! closed-form sub-problem 2, and one full convex iteration.
//! Runs on the std-only harness in `gfp_bench::microbench`.

use gfp_bench::microbench::Group;
use gfp_conic::AdmmSettings;
use gfp_core::lifted::{objective_matrix, Lift};
use gfp_core::subproblems::{solve_subproblem1, solve_subproblem2, Sp1Backend};
use gfp_core::{
    Backend, FloorplannerSettings, GlobalFloorplanProblem, ProblemOptions, SdpFloorplanner,
};
use gfp_netlist::suite;

fn problem(name: &str) -> GlobalFloorplanProblem {
    let b = suite::by_name(name);
    GlobalFloorplanProblem::from_netlist(&b.netlist, &ProblemOptions::default())
        .expect("capture")
        .normalized()
}

fn bench_subproblem1() {
    let group = Group::new("subproblem1_admm");
    for name in ["n10", "n30"] {
        let p = problem(name);
        let obj = objective_matrix(&p, &p.a, None);
        let backend = Sp1Backend::Admm(AdmmSettings {
            eps: 1e-4,
            max_iter: 4000,
            ..AdmmSettings::default()
        });
        group.bench(name, 10, || {
            solve_subproblem1(&p, &p.a, &obj, &backend, None).expect("sp1")
        });
    }
}

fn bench_subproblem2() {
    let group = Group::new("subproblem2_closed_form");
    for n in [10usize, 50, 100, 200] {
        let lift = Lift::new(n);
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 14) as f64, (i / 14) as f64))
            .collect();
        let z = lift.z_matrix(&lift.embed_positions(&positions, 0.3));
        group.bench(&n.to_string(), 20, || solve_subproblem2(&z, n).expect("sp2"));
    }
}

fn bench_full_iteration() {
    let p = problem("n10");
    let mut settings = FloorplannerSettings::fast();
    settings.max_alpha_rounds = 1;
    settings.max_iter = 1;
    settings.alpha0 = 1024.0;
    settings.backend = Backend::Admm(AdmmSettings {
        eps: 1e-4,
        max_iter: 2000,
        ..AdmmSettings::default()
    });
    let group = Group::new("convex_iteration");
    let solver = SdpFloorplanner::new(settings);
    group.bench("one_iteration_n10", 10, || solver.solve(&p).expect("solve"));
}

fn main() {
    bench_subproblem1();
    bench_subproblem2();
    bench_full_iteration();
}
