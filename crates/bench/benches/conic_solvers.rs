//! Micro-benchmarks for the conic solver backends: ADMM vs the
//! dense barrier IPM on identical SDPs (the backend ablation of
//! DESIGN.md), plus the PSD cone projection in isolation.
//! Runs on the std-only harness in `gfp_bench::microbench`.

use gfp_bench::microbench::Group;
use gfp_conic::ipm::{BarrierSdp, BarrierSettings, SdpProblem};
use gfp_conic::{AdmmSettings, AdmmSolver, Cone, ConeProgramBuilder};
use gfp_linalg::svec::{svec, svec_index, svec_len};
use gfp_linalg::Mat;
use gfp_rand::Rng;

/// The correlation-matrix SDP: min <C, Z> s.t. diag Z = 1, Z ⪰ 0.
fn correlation_instances(n: usize) -> (SdpProblem, gfp_conic::ConeProgram) {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let mut c_mat = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = rng.gen_range(-1.0..1.0);
            c_mat[(i, j)] = v;
            c_mat[(j, i)] = v;
        }
    }
    let c = svec(&c_mat);
    let d = svec_len(n);
    let mut ipm = SdpProblem::new(n);
    ipm.c = c.clone();
    let mut admm = ConeProgramBuilder::new(d);
    for (j, &cj) in c.iter().enumerate() {
        admm.set_objective_coeff(j, cj);
    }
    for i in 0..n {
        let idx = svec_index(n, i, i);
        ipm.eq.push((vec![(idx, 1.0)], 1.0));
        admm.add_eq(&[(idx, 1.0)], 1.0);
    }
    admm.add_psd_vars(&(0..d).collect::<Vec<_>>());
    (ipm, admm.build().expect("program"))
}

fn bench_backends() {
    let group = Group::new("sdp_backend");
    for n in [8usize, 16] {
        let (ipm_prob, admm_prob) = correlation_instances(n);
        let admm = AdmmSolver::new(AdmmSettings {
            eps: 1e-6,
            ..AdmmSettings::default()
        });
        group.bench(&format!("admm/{n}"), 10, || {
            admm.solve(&admm_prob).expect("solve")
        });
        let x0 = svec(&Mat::identity(n));
        let ipm = BarrierSdp::new(BarrierSettings::default());
        group.bench(&format!("ipm/{n}"), 10, || {
            ipm.solve_from(&ipm_prob, &x0).expect("solve")
        });
    }
}

fn bench_psd_projection() {
    let group = Group::new("psd_projection");
    for n in [32usize, 102, 202] {
        let dim = svec_len(n);
        let v: Vec<f64> = (0..dim)
            .map(|k| ((k * 37 % 101) as f64 - 50.0) / 50.0)
            .collect();
        group.bench(&n.to_string(), 20, || {
            let mut w = v.clone();
            Cone::Psd(n).project(&mut w);
            w
        });
    }
}

fn main() {
    bench_backends();
    bench_psd_projection();
}
