//! Criterion benchmarks for the conic solver backends: ADMM vs the
//! dense barrier IPM on identical SDPs (the backend ablation of
//! DESIGN.md), plus the PSD cone projection in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfp_conic::ipm::{BarrierSdp, BarrierSettings, SdpProblem};
use gfp_conic::{AdmmSettings, AdmmSolver, Cone, ConeProgramBuilder};
use gfp_linalg::svec::{svec, svec_index, svec_len};
use gfp_linalg::Mat;

/// The correlation-matrix SDP: min <C, Z> s.t. diag Z = 1, Z ⪰ 0.
fn correlation_instances(n: usize) -> (SdpProblem, gfp_conic::ConeProgram) {
    let mut state = 0xC0FFEEu64 | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let mut c_mat = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = next();
            c_mat[(i, j)] = v;
            c_mat[(j, i)] = v;
        }
    }
    let c = svec(&c_mat);
    let d = svec_len(n);
    let mut ipm = SdpProblem::new(n);
    ipm.c = c.clone();
    let mut admm = ConeProgramBuilder::new(d);
    for (j, &cj) in c.iter().enumerate() {
        admm.set_objective_coeff(j, cj);
    }
    for i in 0..n {
        let idx = svec_index(n, i, i);
        ipm.eq.push((vec![(idx, 1.0)], 1.0));
        admm.add_eq(&[(idx, 1.0)], 1.0);
    }
    admm.add_psd_vars(&(0..d).collect::<Vec<_>>());
    (ipm, admm.build().expect("program"))
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdp_backend");
    group.sample_size(10);
    for n in [8usize, 16] {
        let (ipm_prob, admm_prob) = correlation_instances(n);
        group.bench_with_input(BenchmarkId::new("admm", n), &admm_prob, |b, p| {
            let solver = AdmmSolver::new(AdmmSettings {
                eps: 1e-6,
                ..AdmmSettings::default()
            });
            b.iter(|| solver.solve(p).expect("solve"))
        });
        let x0 = svec(&Mat::identity(n));
        group.bench_with_input(BenchmarkId::new("ipm", n), &ipm_prob, |b, p| {
            let solver = BarrierSdp::new(BarrierSettings::default());
            b.iter(|| solver.solve_from(p, &x0).expect("solve"))
        });
    }
    group.finish();
}

fn bench_psd_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("psd_projection");
    group.sample_size(20);
    for n in [32usize, 102, 202] {
        let dim = svec_len(n);
        let v: Vec<f64> = (0..dim).map(|k| ((k * 37 % 101) as f64 - 50.0) / 50.0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &v, |b, v| {
            b.iter(|| {
                let mut w = v.clone();
                Cone::Psd(n).project(&mut w);
                w
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_psd_projection);
criterion_main!(benches);
