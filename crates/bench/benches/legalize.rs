//! Micro-benchmarks for legalization: constraint-graph
//! construction/repair and the full SOCP shape optimization.
//! Runs on the std-only harness in `gfp_bench::microbench`.

use gfp_bench::microbench::Group;
use gfp_bench::{Budget, Pipeline};
use gfp_legalize::constraint_graph::ConstraintGraph;
use gfp_legalize::{legalize, LegalizeSettings};
use gfp_netlist::suite;

fn grid(n: usize, w: f64, h: f64) -> Vec<(f64, f64)> {
    let cols = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| {
            (
                ((i % cols) as f64 + 0.5) / cols as f64 * w,
                ((i / cols) as f64 + 0.5) / cols as f64 * h,
            )
        })
        .collect()
}

fn bench_constraint_graph() {
    let group = Group::new("constraint_graph");
    for name in ["n50", "n200"] {
        let pipeline = Pipeline::new(&suite::by_name(name), 1.0, Budget::Quick);
        let centers = grid(
            pipeline.problem.n,
            pipeline.outline.width,
            pipeline.outline.height,
        );
        group.bench(name, 20, || {
            ConstraintGraph::from_positions(&centers, &pipeline.outline)
        });
    }
}

fn bench_legalize_socp() {
    let group = Group::new("legalize_socp");
    let pipeline = Pipeline::new(&suite::gsrc_n10(), 1.0, Budget::Quick);
    let centers = grid(10, pipeline.outline.width, pipeline.outline.height);
    group.bench("n10_grid", 10, || {
        legalize(
            &pipeline.netlist,
            &pipeline.problem,
            &pipeline.outline,
            &centers,
            &LegalizeSettings::default(),
        )
        .expect("legalizes")
    });
}

fn main() {
    bench_constraint_graph();
    bench_legalize_socp();
}
