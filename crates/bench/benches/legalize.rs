//! Criterion benchmarks for legalization: constraint-graph
//! construction/repair and the full SOCP shape optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfp_bench::{Budget, Pipeline};
use gfp_legalize::constraint_graph::ConstraintGraph;
use gfp_legalize::{legalize, LegalizeSettings};
use gfp_netlist::suite;

fn grid(n: usize, w: f64, h: f64) -> Vec<(f64, f64)> {
    let cols = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| {
            (
                ((i % cols) as f64 + 0.5) / cols as f64 * w,
                ((i / cols) as f64 + 0.5) / cols as f64 * h,
            )
        })
        .collect()
}

fn bench_constraint_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraint_graph");
    group.sample_size(20);
    for name in ["n50", "n200"] {
        let pipeline = Pipeline::new(&suite::by_name(name), 1.0, Budget::Quick);
        let centers = grid(
            pipeline.problem.n,
            pipeline.outline.width,
            pipeline.outline.height,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &centers,
            |b, centers| {
                b.iter(|| ConstraintGraph::from_positions(centers, &pipeline.outline))
            },
        );
    }
    group.finish();
}

fn bench_legalize_socp(c: &mut Criterion) {
    let mut group = c.benchmark_group("legalize_socp");
    group.sample_size(10);
    let pipeline = Pipeline::new(&suite::gsrc_n10(), 1.0, Budget::Quick);
    let centers = grid(10, pipeline.outline.width, pipeline.outline.height);
    group.bench_function("n10_grid", |b| {
        b.iter(|| {
            legalize(
                &pipeline.netlist,
                &pipeline.problem,
                &pipeline.outline,
                &centers,
                &LegalizeSettings::default(),
            )
            .expect("legalizes")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_constraint_graph, bench_legalize_socp);
criterion_main!(benches);
