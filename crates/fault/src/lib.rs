//! Deterministic fault injection for the gfp numeric pipeline.
//!
//! Robustness work needs reproducible failures: an ADMM iterate that
//! goes NaN at exactly iteration 7, an eigendecomposition that stalls
//! on the 3rd call, a CSR matvec that returns Inf once. This crate
//! provides **seed-driven, call-count-triggered** injection hooks that
//! the numeric crates poll at well-defined *serial* boundaries
//! (iteration starts, kernel entries), so every injected failure
//! reproduces bit-identically at any `GFP_THREADS` setting.
//!
//! # Zero cost unless enabled
//!
//! All hooks compile to empty `#[inline(always)]` functions unless the
//! `fault-inject` cargo feature is on. Release builds without the
//! feature therefore carry **no injection branches at all** — verified
//! in CI by a `--no-default-features` build pass.
//!
//! # Usage (tests only)
//!
//! ```
//! use gfp_fault as fault;
//!
//! // Arm: NaN-corrupt the ADMM iterate at its 3rd iteration boundary.
//! fault::arm(fault::FaultPlan::single(
//!     fault::Site::AdmmIter,
//!     fault::FaultKind::Nan,
//!     2,
//! ));
//! // ... run the solver under supervision, assert graceful recovery ...
//! fault::disarm();
//! ```
//!
//! With the feature off, `arm` is inert and `poll` always returns
//! `None`, so the example above compiles and runs either way.
//!
//! # Determinism contract
//!
//! Hooks must only be polled from serial code (an outer iteration
//! loop, a kernel entry point called from one thread at a time within
//! a solve). Hit counters then advance in program order and the Nth
//! hit is the same operation on every run and worker count. All sites
//! instrumented in-tree satisfy this.

use std::fmt;

/// Injection sites instrumented across the workspace. Each is polled
/// at a serial execution boundary (see the determinism contract in
/// the [crate docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Site {
    /// ADMM outer-iteration boundary (`gfp-conic`, `admm.rs`).
    AdmmIter,
    /// Barrier IPM centering-loop boundary (`gfp-conic`, `ipm.rs`).
    IpmNewton,
    /// Symmetric eigendecomposition entry (`gfp-linalg`, `eigen.rs`).
    Eigh,
    /// CSR matrix-vector product (`gfp-linalg`, `sparse.rs`).
    CsrMatvec,
    /// Lanczos partial eigensolver entry (`gfp-linalg`, `lanczos.rs`).
    Lanczos,
    /// Durable snapshot write (`gfp-store`, `snapshot.rs`). Kinds map
    /// to storage failures: `Nan`/`Inf`/`Stall` → the write fails with
    /// an injected I/O error (nothing lands on disk), `BudgetExhaust`
    /// → a torn write (only a prefix of the record persists),
    /// `PerturbResidual` → one payload byte is flipped after the CRC
    /// is computed (silent corruption).
    CheckpointWrite,
}

impl Site {
    /// Every instrumented site, for matrix-style tests.
    pub const ALL: [Site; 6] = [
        Site::AdmmIter,
        Site::IpmNewton,
        Site::Eigh,
        Site::CsrMatvec,
        Site::Lanczos,
        Site::CheckpointWrite,
    ];

    /// Stable name used in telemetry events.
    pub fn name(self) -> &'static str {
        match self {
            Site::AdmmIter => "admm.iter",
            Site::IpmNewton => "ipm.newton",
            Site::Eigh => "eigh",
            Site::CsrMatvec => "csr.matvec",
            Site::Lanczos => "lanczos",
            Site::CheckpointWrite => "checkpoint.write",
        }
    }

    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            Site::AdmmIter => 0,
            Site::IpmNewton => 1,
            Site::Eigh => 2,
            Site::CsrMatvec => 3,
            Site::Lanczos => 4,
            Site::CheckpointWrite => 5,
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an armed fault does when it fires. The *interpretation* is up
/// to the instrumented site; the canonical semantics are:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Overwrite one deterministic entry of the site's state with NaN.
    Nan,
    /// Overwrite one deterministic entry with `+∞`.
    Inf,
    /// Force the site to stop making progress (e.g. suppress the
    /// solver's convergence acceptance) until its budget runs out.
    Stall,
    /// Exhaust the site's iteration budget immediately (early stop
    /// with whatever iterate is current).
    BudgetExhaust,
    /// Perturb the site's residual/metric by `magnitude` (relative).
    PerturbResidual,
}

impl FaultKind {
    /// Every kind, for matrix-style tests.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Nan,
        FaultKind::Inf,
        FaultKind::Stall,
        FaultKind::BudgetExhaust,
        FaultKind::PerturbResidual,
    ];

    /// Stable name used in telemetry events.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Nan => "nan",
            FaultKind::Inf => "inf",
            FaultKind::Stall => "stall",
            FaultKind::BudgetExhaust => "budget_exhaust",
            FaultKind::PerturbResidual => "perturb_residual",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One armed fault: fire `count` times at site hits strictly after the
/// first `after` (so `after = 0` fires on the very first hit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Where to fire.
    pub site: Site,
    /// What to do.
    pub kind: FaultKind,
    /// Site hits to skip before firing.
    pub after: u64,
    /// How many consecutive hits fire (0 = never).
    pub count: u64,
    /// Kind-specific magnitude (e.g. the residual perturbation factor).
    pub magnitude: f64,
}

/// A set of armed faults, the unit handed to [`arm`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The armed faults; the first matching spec wins at each hit.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (arming it clears all faults but keeps counting
    /// site hits).
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-fault plan firing once, with magnitude 1.
    pub fn single(site: Site, kind: FaultKind, after: u64) -> Self {
        FaultPlan {
            specs: vec![FaultSpec {
                site,
                kind,
                after,
                count: 1,
                magnitude: 1.0,
            }],
        }
    }

    /// Adds a spec (builder style).
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// A deterministic pseudo-random single-fault plan derived from
    /// `seed` with splitmix64: same seed, same plan, forever. Useful
    /// for fuzz-style sweeps (`for seed in 0..N`).
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let site = Site::ALL[(next() % Site::ALL.len() as u64) as usize];
        let kind = FaultKind::ALL[(next() % FaultKind::ALL.len() as u64) as usize];
        let after = next() % 8;
        let magnitude = 10f64.powi((next() % 5) as i32);
        FaultPlan {
            specs: vec![FaultSpec {
                site,
                kind,
                after,
                count: 1,
                magnitude,
            }],
        }
    }
}

/// A fault that just fired at a polled site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fired {
    /// What to do.
    pub kind: FaultKind,
    /// Kind-specific magnitude from the spec.
    pub magnitude: f64,
}

#[cfg(feature = "fault-inject")]
mod imp {
    use super::{FaultPlan, Fired, Site};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    struct ArmedSpec {
        spec: super::FaultSpec,
        fired: u64,
    }

    static ARMED: AtomicBool = AtomicBool::new(false);
    static FIRED_TOTAL: AtomicU64 = AtomicU64::new(0);
    static HITS: [AtomicU64; 6] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];
    static PLAN: Mutex<Vec<ArmedSpec>> = Mutex::new(Vec::new());

    pub fn arm(plan: FaultPlan) {
        let mut armed = PLAN.lock().expect("fault plan lock");
        armed.clear();
        armed.extend(plan.specs.into_iter().map(|spec| ArmedSpec { spec, fired: 0 }));
        for h in &HITS {
            h.store(0, Ordering::Relaxed);
        }
        FIRED_TOTAL.store(0, Ordering::Relaxed);
        ARMED.store(true, Ordering::SeqCst);
        gfp_telemetry::counter_add("fault.armed", 1);
    }

    pub fn disarm() {
        ARMED.store(false, Ordering::SeqCst);
        PLAN.lock().expect("fault plan lock").clear();
    }

    pub fn is_armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    pub fn injected_total() -> u64 {
        FIRED_TOTAL.load(Ordering::Relaxed)
    }

    pub fn site_hits(site: Site) -> u64 {
        HITS[site.index()].load(Ordering::Relaxed)
    }

    pub fn poll(site: Site) -> Option<Fired> {
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
        let hit = HITS[site.index()].fetch_add(1, Ordering::Relaxed);
        let mut plan = PLAN.lock().expect("fault plan lock");
        for armed in plan.iter_mut() {
            if armed.spec.site == site && hit >= armed.spec.after && armed.fired < armed.spec.count
            {
                armed.fired += 1;
                FIRED_TOTAL.fetch_add(1, Ordering::Relaxed);
                let fired = Fired {
                    kind: armed.spec.kind,
                    magnitude: armed.spec.magnitude,
                };
                drop(plan);
                gfp_telemetry::counter_add("fault.injected", 1);
                if gfp_telemetry::enabled() {
                    gfp_telemetry::event(
                        "fault.injected",
                        &[
                            ("site", gfp_telemetry::Value::Text(site.name().into())),
                            ("kind", gfp_telemetry::Value::Text(fired.kind.name().into())),
                            ("hit", hit.into()),
                        ],
                    );
                }
                return Some(fired);
            }
        }
        None
    }
}

#[cfg(not(feature = "fault-inject"))]
mod imp {
    //! Inert mirror: every hook folds to nothing; arming is a no-op.
    use super::{FaultPlan, Fired, Site};

    #[inline(always)]
    pub fn arm(_plan: FaultPlan) {}

    #[inline(always)]
    pub fn disarm() {}

    #[inline(always)]
    pub fn is_armed() -> bool {
        false
    }

    #[inline(always)]
    pub fn injected_total() -> u64 {
        0
    }

    #[inline(always)]
    pub fn site_hits(_site: Site) -> u64 {
        0
    }

    #[inline(always)]
    pub fn poll(_site: Site) -> Option<Fired> {
        None
    }
}

/// Whether injection support is compiled in (the `fault-inject`
/// feature). When `false`, [`arm`] is inert and [`poll`] is a no-op.
pub const COMPILED_IN: bool = cfg!(feature = "fault-inject");

/// Arms a plan, resetting all site hit counters and fired counts.
/// Inert without the `fault-inject` feature.
pub fn arm(plan: FaultPlan) {
    imp::arm(plan);
}

/// Disarms everything; subsequent [`poll`]s return `None`.
pub fn disarm() {
    imp::disarm();
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    imp::is_armed()
}

/// Total faults fired since the last [`arm`].
pub fn injected_total() -> u64 {
    imp::injected_total()
}

/// Hits recorded at `site` since the last [`arm`] (0 when disarmed or
/// compiled out).
pub fn site_hits(site: Site) -> u64 {
    imp::site_hits(site)
}

/// The injection hook: called by instrumented sites once per serial
/// boundary crossing. Returns the fault to apply, if one fires.
///
/// With the `fault-inject` feature off this is an `#[inline(always)]`
/// `None`, so hook call sites optimize away entirely.
#[inline(always)]
pub fn poll(site: Site) -> Option<Fired> {
    imp::poll(site)
}

/// Convenience hook for kernels holding a mutable buffer: polls
/// `site`, applies `Nan`/`Inf` corruption to `data[0]` directly, and
/// hands any other fired kind back to the caller to interpret.
#[inline(always)]
pub fn corrupt_first(site: Site, data: &mut [f64]) -> Option<Fired> {
    let fired = poll(site)?;
    match fired.kind {
        FaultKind::Nan => {
            if let Some(v) = data.first_mut() {
                *v = f64::NAN;
            }
            Some(fired)
        }
        FaultKind::Inf => {
            if let Some(v) = data.first_mut() {
                *v = f64::INFINITY;
            }
            Some(fired)
        }
        _ => Some(fired),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed state is process-global; serialize tests touching it.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn seeded_plans_are_reproducible() {
        for seed in 0..32 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        // And not all identical.
        assert_ne!(FaultPlan::from_seed(1), FaultPlan::from_seed(2));
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fires_at_the_exact_hit() {
        let _g = LOCK.lock().unwrap();
        arm(FaultPlan::single(Site::Eigh, FaultKind::Nan, 2));
        assert!(poll(Site::Eigh).is_none()); // hit 0
        assert!(poll(Site::AdmmIter).is_none()); // other site
        assert!(poll(Site::Eigh).is_none()); // hit 1
        let fired = poll(Site::Eigh).expect("hit 2 fires");
        assert_eq!(fired.kind, FaultKind::Nan);
        assert!(poll(Site::Eigh).is_none()); // count exhausted
        assert_eq!(injected_total(), 1);
        assert_eq!(site_hits(Site::Eigh), 4);
        disarm();
        assert!(poll(Site::Eigh).is_none());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn corrupt_first_writes_nan_and_inf() {
        let _g = LOCK.lock().unwrap();
        arm(
            FaultPlan::single(Site::CsrMatvec, FaultKind::Nan, 0).with(FaultSpec {
                site: Site::CsrMatvec,
                kind: FaultKind::Inf,
                after: 1,
                count: 1,
                magnitude: 1.0,
            }),
        );
        let mut v = vec![1.0, 2.0];
        assert!(corrupt_first(Site::CsrMatvec, &mut v).is_some());
        assert!(v[0].is_nan());
        v[0] = 1.0;
        assert!(corrupt_first(Site::CsrMatvec, &mut v).is_some());
        assert!(v[0].is_infinite());
        disarm();
    }

    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn compiled_out_is_inert() {
        let _g = LOCK.lock().unwrap();
        assert!(!COMPILED_IN);
        arm(FaultPlan::single(Site::Eigh, FaultKind::Nan, 0));
        assert!(!is_armed());
        assert!(poll(Site::Eigh).is_none());
        assert_eq!(injected_total(), 0);
        disarm();
    }
}
