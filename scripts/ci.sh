#!/usr/bin/env bash
# Offline CI gate: release build, tests, and clippy for the whole
# workspace. No network access required — the workspace has no
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tier-1 tests (root package) =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== workspace tests (GFP_THREADS=2) =="
# Re-run the kernel-heavy crates with a 2-worker pool: exercises the
# parallel dispatch paths and the bitwise determinism contract.
GFP_THREADS=2 cargo test -q -p gfp-parallel -p gfp-linalg -p gfp-conic

echo "== kernel bench (smoke) =="
# Quick serial-vs-parallel run of the hot kernels; asserts bitwise
# identical outputs and writes target/BENCH_kernels.smoke.json.
scripts/bench_kernels.sh --smoke

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    # Warnings are reported but only hard errors fail the gate (the
    # seed carries some style lints that are cleaned up gradually).
    cargo clippy --workspace --all-targets
else
    echo "clippy not installed; skipping"
fi

echo "CI gate passed."
