#!/usr/bin/env bash
# Offline CI gate: release build, tests, and clippy for the whole
# workspace. No network access required — the workspace has no
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tier-1 tests (root package) =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== slow-tier tests =="
# Full-budget integration tests (#[ignore]d from the fast tier, see
# DESIGN.md §10): SDP → legalization pipelines at publication budgets.
cargo test -q -- --ignored

echo "== fault-injection tests =="
# Deterministic fault-matrix + supervisor recovery tests; the hooks
# only compile under the opt-in `fault-inject` feature.
cargo test -q -p gfp-core --features fault-inject

echo "== no-default-features build =="
# The workspace must still build with every optional feature (telemetry
# sinks, fault hooks) disabled — guards against accidental hard deps.
cargo build --workspace --no-default-features

echo "== workspace tests (GFP_THREADS=2, spectral fast path on) =="
# Re-run the kernel-heavy crates with a 2-worker pool: exercises the
# parallel dispatch paths and the bitwise determinism contract.
GFP_THREADS=2 cargo test -q -p gfp-parallel -p gfp-linalg -p gfp-conic

echo "== workspace tests (GFP_THREADS=2, spectral fast path off) =="
# Same crates plus the core solver with the deflated eigensolver and
# partial PSD projection disabled: everything must pass on the dense
# routes too (the fast path is an optimization, never a dependency).
GFP_NO_SPECTRAL_FASTPATH=1 GFP_THREADS=2 \
    cargo test -q -p gfp-parallel -p gfp-linalg -p gfp-conic -p gfp-core

echo "== crash recovery + ingestion torture (GFP_THREADS=2) =="
# Process-level kill-and-resume matrix (the harness binary aborts
# itself mid-solve) and the seeded byte-mutation parser torture tests.
GFP_THREADS=2 cargo test -q -p gfp --test crash_resume
GFP_THREADS=2 cargo test -q -p gfp-netlist --test torture

echo "== traced checkpoint smoke run =="
# A checkpointing solve plus a resume, each with GFP_TRACE pointed at a
# JSONL file; the durable-store telemetry must actually reach the
# trace stream, not just the in-memory counters.
rm -rf target/ckpt-smoke target/ckpt_trace_solve.jsonl target/ckpt_trace_resume.jsonl
GFP_TRACE=target/ckpt_trace_solve.jsonl GFP_THREADS=2 \
    target/release/checkpoint_solve --dir target/ckpt-smoke --rounds 2 \
    --out target/ckpt-smoke-solve.txt
GFP_TRACE=target/ckpt_trace_resume.jsonl GFP_THREADS=2 \
    target/release/checkpoint_solve --dir target/ckpt-smoke --rounds 3 --resume \
    --out target/ckpt-smoke-resume.txt
if ! grep -q '"name":"store.snapshot_write"' target/ckpt_trace_solve.jsonl; then
    echo "FAIL: no store.snapshot_write event in the solve trace" >&2
    exit 1
fi
if ! grep -q '"name":"store.resume"' target/ckpt_trace_resume.jsonl; then
    echo "FAIL: no store.resume event in the resume trace" >&2
    exit 1
fi

echo "== observability smoke run (gfp-trace) =="
# A traced n50 supervised solve with both observability artifacts on:
# GFP_TRACE (JSONL span/event stream) and GFP_REPORT (structured
# gfp-solve-report-v1 JSON). The trace must carry the per-α-round
# round.summary events, the analyzer must render both views, a report
# self-diff must be clean, and a doctored report (inflated span wall
# time) must trip the regression gate with a nonzero exit.
rm -rf target/obs-smoke
mkdir -p target/obs-smoke
GFP_TRACE=target/obs-smoke/trace.jsonl GFP_REPORT=target/obs-smoke/report.json \
    GFP_THREADS=2 \
    target/release/checkpoint_solve --dir target/obs-smoke/ckpt --rounds 2 \
    --instance n50 --out target/obs-smoke/solve.txt
if ! grep -q '"name":"round.summary"' target/obs-smoke/trace.jsonl; then
    echo "FAIL: no round.summary events in target/obs-smoke/trace.jsonl" >&2
    exit 1
fi
if ! grep -q '"schema":"gfp-solve-report-v1"' target/obs-smoke/report.json; then
    echo "FAIL: target/obs-smoke/report.json is not a gfp-solve-report-v1" >&2
    exit 1
fi
target/release/gfp-trace tree target/obs-smoke/report.json
target/release/gfp-trace rounds target/obs-smoke/report.json
target/release/gfp-trace diff target/obs-smoke/report.json target/obs-smoke/report.json
# Doctor the candidate: multiply every span's total wall time by ~9x
# (the line-oriented report makes this a plain text substitution). The
# diff gate must catch it.
sed 's/"total_secs":/"total_secs":9/' target/obs-smoke/report.json \
    > target/obs-smoke/report.doctored.json
if target/release/gfp-trace diff target/obs-smoke/report.json \
    target/obs-smoke/report.doctored.json; then
    echo "FAIL: gfp-trace diff did not flag the doctored report" >&2
    exit 1
fi

echo "== kernel bench (smoke) =="
# Quick serial-vs-parallel run of the hot kernels; asserts bitwise
# identical outputs and writes target/BENCH_kernels.smoke.json. The
# JSON is then checked explicitly: any row recording a serial/parallel
# divergence fails the gate even if the binary's own assert changes.
scripts/bench_kernels.sh --smoke
if grep -q '"bitwise_match": false' target/BENCH_kernels.smoke.json; then
    echo "FAIL: bitwise mismatch recorded in target/BENCH_kernels.smoke.json" >&2
    exit 1
fi

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    # Warnings are reported but only hard errors fail the gate (the
    # seed carries some style lints that are cleaned up gradually).
    cargo clippy --workspace --all-targets
else
    echo "clippy not installed; skipping"
fi

echo "CI gate passed."
