#!/usr/bin/env bash
# Regenerates the tracked kernel benchmark baseline BENCH_kernels.json
# at the repo root (matmul / eigh / project_psd at n ∈ {50, 100, 200},
# serial vs parallel, with bitwise-match verification).
#
# Usage:
#   scripts/bench_kernels.sh            # full baseline, release build
#   scripts/bench_kernels.sh --smoke    # quick CI smoke run, writes to
#                                       # target/BENCH_kernels.smoke.json
#
# GFP_THREADS sets the parallel pool width (default 4). Wall-clock
# speedups require real cores; on a single-CPU host the numbers record
# the (small) pool overhead honestly and the bitwise check still runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p gfp-bench --bin bench_kernels -- "$@"
